package rpc

import (
	"sync"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// PairSource supplies the colocated throughput rows for a candidate
// space-sharing pair (ta for job a, tb for job b, indexed by accelerator
// type). The service queries it when a job lands on a shard — admission,
// migration, or recovery — to ship pair candidates alongside the job; shards
// apply them HasPair-gated, so the source may answer for already-cached pairs
// without harm. Nil disables space sharing.
type PairSource func(a, b int) (ta, tb []float64)

// ServiceConfig parameterizes a remote coordinator over shard daemons. The
// fields mirror cluster.CoordinatorConfig — same cluster split, same routing,
// same pair knobs — because the Service must make byte-identical decisions to
// the in-process Coordinator; the additions are the wire-only concerns
// (policy by name, resolved LP options, the pair source).
type ServiceConfig struct {
	// Cluster is the global cluster; its per-type device counts are split
	// across the shard daemons with cluster.SplitWorkerCounts.
	Cluster cluster.Spec
	// Policy names the scheduling policy every daemon instantiates.
	Policy PolicySpec
	// LP carries the solver knobs. NewService resolves Auto fields against
	// this process's defaults before pushing, so daemons solve with the
	// coordinator's settings regardless of their local environment.
	LP lp.Options
	// ColdSolves disables the daemons' solve contexts (benchmark baseline).
	ColdSolves bool
	// Route selects arrival routing (default hash by job ID).
	Route cluster.RoutePolicy
	// PairGainThreshold / MaxPairsPerJob parameterize space-sharing pair
	// candidates exactly as in cluster.CoordinatorConfig.
	PairGainThreshold float64
	MaxPairsPerJob    int
	// Pairs supplies colocated throughput rows for pair candidates; nil
	// disables pair shipping (no space sharing).
	Pairs PairSource
	// Journal, when non-empty, is the path of the coordinator's write-ahead
	// log. Every mirror mutation is journaled after the daemon acknowledges
	// it and fsynced at round boundaries (EndRound), so a restarted
	// coordinator replays to the exact pre-crash mirror — warm seeds included
	// — and resumes mid-run. An existing journal at the path triggers the
	// resume path (see Resumed).
	Journal string
	// StaleAfterRounds bounds graceful degradation: a shard whose Allocate
	// keeps failing transiently serves its last allocation for this many
	// consecutive rounds before being escalated to down (0 means the default
	// of 3; a shard with no allocation to serve escalates immediately).
	StaleAfterRounds int
	// Admission, when non-nil, enables the streaming submission plane
	// (Submit/Withdraw/Poll, per-tenant quotas, the overload ladder, and the
	// declared-vs-measured trust review; see service_submit.go). Nil keeps
	// the legacy driver-admitted batch behavior byte-identical.
	Admission *AdmissionConfig
	// Obs, when non-nil, registers the coordinator's telemetry: service
	// counters and gauges, journal and admission instruments, and the
	// per-round trace IDs stamped onto every control-plane call (see
	// serviceobs.go). Nil disables all of it at the cost of nil checks;
	// metrics never influence a scheduling decision, so enabling them cannot
	// perturb determinism.
	Obs *obs.Plane
}

// defaultStaleAfter is the StaleAfterRounds default: long enough to ride out
// a transient stall, short enough that a wedged daemon's jobs recover within
// a handful of rounds.
const defaultStaleAfter = 3

// shardMirror is the coordinator's local view of one shard daemon: enough
// membership, demand, and allocation state to make every routing, rebalance,
// and staleness decision without a remote read, plus the last recovery
// snapshot. The mirror is authoritative for control decisions; the daemon is
// authoritative for solves and round mechanics.
type shardMirror struct {
	index  int
	client ShardClient
	down   bool

	jobs   []int // resident job IDs in admission order
	jobPos map[int]int
	sf     map[int]int       // clamped scale factors
	tput   map[int][]float64 // isolated throughput rows (recovery re-install)
	load   int               // total device demand (sum of scale factors)
	dirty  bool              // membership changed since the last allocation

	alloc    *core.Allocation // last AllocateReply, rebuilt coordinator-side
	allocIDs []int

	seeds  []policy.Seed // last snapshot's warm seeds
	status ShardStatus   // last known accounting (survives the daemon)

	// Degradation ladder: staleRounds counts consecutive rounds this shard's
	// allocation went stale because Allocate failed transiently (reset on the
	// next success); staleAllocs is the lifetime total, surfaced through
	// StaleAllocs for the round report.
	staleRounds int
	staleAllocs int
}

func (m *shardMirror) add(id, scaleFactor int, tput []float64) {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	m.jobPos[id] = len(m.jobs)
	m.jobs = append(m.jobs, id)
	m.sf[id] = scaleFactor
	m.tput[id] = append([]float64(nil), tput...)
	m.load += scaleFactor
	m.dirty = true
}

func (m *shardMirror) remove(id int) {
	pos, ok := m.jobPos[id]
	if !ok {
		return
	}
	m.load -= m.sf[id]
	m.jobs = append(m.jobs[:pos], m.jobs[pos+1:]...)
	delete(m.jobPos, id)
	delete(m.sf, id)
	delete(m.tput, id)
	for i := pos; i < len(m.jobs); i++ {
		m.jobPos[m.jobs[i]] = i
	}
	m.dirty = true
}

// unitScaleFactor is the max member scale factor of unit u in the mirrored
// allocation — the mirror's copy of Shard.unitScaleFactor, used to validate
// merged rounds against the worker budgets.
func (m *shardMirror) unitScaleFactor(u int) int {
	sf := 1
	for _, local := range m.alloc.Units[u].Jobs {
		if v := m.sf[m.allocIDs[local]]; v > sf {
			sf = v
		}
	}
	return sf
}

// Service is the remote coordinator of the cluster service: the
// cluster.Coordinator algorithms — deterministic routing, rebalance by
// warm-basis migration, concurrent allocation fan-out, round merging under
// the global budget — re-expressed over the control plane, driving shard
// daemons through ShardClients instead of in-process Shards. It keeps a
// local mirror of each daemon's membership and load so every control
// decision replicates the in-process coordinator's byte for byte, pulls
// periodic basis snapshots, and on daemon death re-routes the dead shard's
// jobs onto the survivors with the snapshot seeds so their next solves land
// remapped, not cold.
//
// A Service is not safe for concurrent use; like the in-process Coordinator,
// all mutating entry points are single-threaded by design and the
// concurrency lives inside the fan-out calls.
type Service struct {
	cfg        ServiceConfig
	numTypes   int
	globalInts []int
	split      [][]int
	shards     []*shardMirror
	shardOf    map[int]int
	migrations int
	rebalances int
	recoveries int

	// Durability plane (nil/zero when ServiceConfig.Journal is empty).
	j              *journal
	resumed        bool
	round          int64 // last round sealed by EndRound
	staleAfter     int
	roundDegraded  bool // some shard ran degraded since the last EndRound
	degradedRounds int  // lifetime count of degraded rounds

	// Submission plane (nil when ServiceConfig.Admission is nil). The
	// ingress has its own mutex: Submit/Withdraw/Poll are the one
	// concurrent-safe surface of the Service.
	ing *ingress

	// Telemetry plane (all-nil instruments when ServiceConfig.Obs is nil;
	// see serviceobs.go). curTrace is the trace ID stamped on every
	// control-plane call until the next round seal — obs.RoundTrace of the
	// round currently being built.
	tel      serviceObs
	curTrace string
}

// NewService validates the config, splits the cluster across the clients,
// and pushes each daemon its configuration (handshake included). The caller
// retains ownership of the clients; Close closes them.
func NewService(cfg ServiceConfig, clients []ShardClient) (*Service, error) {
	if len(clients) == 0 {
		return nil, Errorf(CodeBadRequest, "no shard clients")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	numTypes := cfg.Cluster.NumTypes()
	counts := make([]int, numTypes)
	perServer := make([]int, numTypes)
	for j, t := range cfg.Cluster.Types {
		counts[j] = t.Count
		perServer[j] = t.PerServer
	}
	prices := cfg.Cluster.Prices()
	split := cluster.SplitWorkerCounts(counts, len(clients))
	// Resolve Auto knobs here so every daemon solves with this process's
	// settings, not its own environment's.
	lpOpts := cfg.LP.Resolve()

	s := &Service{
		cfg:        cfg,
		numTypes:   numTypes,
		globalInts: counts,
		split:      split,
		shardOf:    map[int]int{},
		staleAfter: cfg.StaleAfterRounds,
		curTrace:   obs.RoundTrace(1),
	}
	if s.staleAfter <= 0 {
		s.staleAfter = defaultStaleAfter
	}
	if cfg.Admission != nil {
		// Built before any journal replay: replayed submission records apply
		// straight into the ingress.
		s.ing = newIngress(*cfg.Admission, numTypes)
	}
	for k, client := range clients {
		if _, err := client.Hello(HelloArgs{Version: ProtocolVersion, Role: "coordinator"}); err != nil {
			return nil, err
		}
		err := client.Configure(ShardConfig{
			Index:             k,
			WorkerInts:        split[k],
			PerServer:         perServer,
			Prices:            prices,
			Policy:            cfg.Policy,
			LP:                lpOpts,
			ColdSolves:        cfg.ColdSolves,
			PairGainThreshold: cfg.PairGainThreshold,
			MaxPairsPerJob:    cfg.MaxPairsPerJob,
		})
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shardMirror{
			index:  k,
			client: client,
			jobPos: map[int]int{},
			sf:     map[int]int{},
			tput:   map[int][]float64{},
			status: ShardStatus{Index: k},
		})
	}
	if cfg.Journal != "" {
		j, recs, err := openJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		s.j = j
		if len(recs) > 0 {
			hdr := recs[0].Config
			if hdr.NumShards != len(clients) {
				j.f.Close()
				return nil, Errorf(CodeBadRequest,
					"journal was written for %d shards, service has %d", hdr.NumShards, len(clients))
			}
			if err := s.replay(recs[1:]); err != nil {
				j.f.Close()
				return nil, err
			}
			s.resumed = true
			s.curTrace = obs.RoundTrace(s.round + 1)
			if err := s.reconcile(); err != nil {
				j.f.Close()
				return nil, err
			}
		} else {
			err := j.append(&journalRecord{Kind: recConfig, Config: &journalConfig{
				Version:   JournalVersion,
				NumShards: len(clients),
				Policy:    cfg.Policy,
				Route:     int(cfg.Route),
			}})
			if err == nil {
				err = j.commit()
			}
			if err != nil {
				j.f.Close()
				return nil, err
			}
		}
	}
	s.setObs(cfg.Obs)
	s.syncObs()
	return s, nil
}

// replay applies the journal's post-header records to the mirror, rebuilding
// the exact pre-crash coordinator state without touching any daemon. It is
// the read-side twin of the journaling mutators below: every applyX helper is
// shared with the live path, so replayed and lived-through state cannot
// drift.
func (s *Service) replay(recs []journalRecord) error {
	for i := range recs {
		rec := &recs[i]
		bad := func(k int) bool { return k < 0 || k >= len(s.shards) }
		switch rec.Kind {
		case recInstall:
			in := rec.Install
			if in == nil || bad(in.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: malformed install", i+1)
			}
			m := s.shards[in.Shard]
			m.add(in.JobID, in.ScaleFactor, in.Tput)
			s.shardOf[in.JobID] = m.index
			if s.ing != nil {
				s.ing.noteAdmitted(in.JobID, m.index)
			}
			switch in.Reason {
			case reasonMigrate:
				s.migrations++
			case reasonRecover:
				s.recoveries++
			}
		case recRemove:
			rm := rec.Remove
			if rm == nil || bad(rm.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: malformed remove", i+1)
			}
			s.applyRemove(rm.Shard, rm.JobID)
		case recDown:
			if bad(rec.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: bad shard", i+1)
			}
			s.applyDown(s.shards[rec.Shard])
		case recDirty:
			if bad(rec.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: bad shard", i+1)
			}
			s.shards[rec.Shard].dirty = true
		case recAlloc:
			al := rec.Alloc
			if al == nil || bad(al.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: malformed alloc", i+1)
			}
			m := s.shards[al.Shard]
			m.alloc = &core.Allocation{Units: al.Units, X: al.X}
			m.allocIDs = al.IDs
			m.dirty = false
			m.staleRounds = 0
		case recSnapshot:
			sn := rec.Snapshot
			if sn == nil || bad(sn.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: malformed snapshot", i+1)
			}
			m := s.shards[sn.Shard]
			m.seeds = sn.Seeds
			m.status = sn.Status
		case recRebalance:
			s.rebalances++
		case recDegrade:
			if bad(rec.Shard) {
				return Errorf(CodeBadRequest, "journal record %d: bad shard", i+1)
			}
			m := s.shards[rec.Shard]
			m.staleRounds++
			m.staleAllocs++
		case recRound:
			s.round = rec.Round
			if rec.Degraded {
				s.degradedRounds++
			}
			if s.ing != nil {
				// Re-run the round boundary's deterministic ingress work
				// (token refill, overload ladder, trust review) so counters,
				// quarantine flags, and mirror throughput clamps land exactly
				// as they did live. No daemon push during replay: reconcile
				// re-installs from the clamped mirror rows where needed.
				s.applyClamps(s.ing.endRound(rec.Round), false)
			}
		case recSubmit:
			if rec.Submit == nil || s.ing == nil {
				return Errorf(CodeBadRequest, "journal record %d: submission record without an admission config", i+1)
			}
			s.ing.mu.Lock()
			s.ing.applySubmitLocked(rec.Submit)
			s.ing.mu.Unlock()
		case recReject:
			if rec.Ref == nil || s.ing == nil {
				return Errorf(CodeBadRequest, "journal record %d: malformed reject", i+1)
			}
			s.ing.mu.Lock()
			s.ing.applyRejectLocked(rec.Ref)
			s.ing.mu.Unlock()
		case recWithdraw:
			if rec.Ref == nil || s.ing == nil {
				return Errorf(CodeBadRequest, "journal record %d: malformed withdraw", i+1)
			}
			s.ing.mu.Lock()
			s.ing.applyWithdrawLocked(rec.Ref)
			s.ing.mu.Unlock()
		case recTouch:
			if rec.Ref == nil || s.ing == nil {
				return Errorf(CodeBadRequest, "journal record %d: malformed touch", i+1)
			}
			s.ing.mu.Lock()
			s.ing.applyTouchLocked(rec.Ref)
			s.ing.mu.Unlock()
		case recMeasure:
			if rec.Measure == nil || s.ing == nil {
				return Errorf(CodeBadRequest, "journal record %d: malformed measure", i+1)
			}
			s.ing.mu.Lock()
			s.ing.applyMeasureLocked(rec.Measure)
			s.ing.mu.Unlock()
		default:
			return Errorf(CodeBadRequest, "journal record %d: unknown kind %d", i+1, rec.Kind)
		}
	}
	return nil
}

// reconcile squares the replayed mirror with what each live daemon actually
// holds. Daemons that survived the coordinator crash already match (the
// journal is written after their acks); a daemon that restarted bare gets its
// mirror jobs re-installed with the last snapshot seeds (warm via remap, not
// cold), and any daemon-side job the mirror no longer lists is removed.
func (s *Service) reconcile() error {
	for _, m := range s.shards {
		if m.down {
			continue
		}
		st, err := m.client.Status()
		if err != nil {
			if err = s.downOrErr(m, err); err != nil {
				return err
			}
			continue
		}
		resident := make(map[int]bool, len(st.Jobs))
		for _, id := range st.Jobs {
			resident[id] = true
		}
		for _, id := range m.jobs {
			if resident[id] {
				continue
			}
			args := InstallArgs{
				JobID:       id,
				ScaleFactor: m.sf[id],
				Tput:        m.tput[id],
				Seeds:       m.seeds,
				Migrated:    true,
				Trace:       s.curTrace,
			}
			args.Pairs = s.pairRows(m, id, args.ScaleFactor)
			if err := m.client.Install(args); err != nil {
				if err = s.downOrErr(m, err); err != nil {
					return err
				}
				break
			}
		}
		if m.down {
			continue
		}
		for id := range resident {
			if _, ok := m.jobPos[id]; ok {
				continue
			}
			if err := m.client.Remove(RemoveArgs{JobID: id, Trace: s.curTrace}); err != nil {
				if err = s.downOrErr(m, err); err != nil {
					return err
				}
				break
			}
		}
	}
	return nil
}

// record appends one record to the journal (no-op without one). Durability
// waits for the next EndRound commit; ordering is fixed at append time.
func (s *Service) record(rec *journalRecord) error {
	if s.j == nil {
		return nil
	}
	return s.j.append(rec)
}

// NumShards returns the partition count (live and dead).
func (s *Service) NumShards() int { return len(s.shards) }

// NumJobs returns the total resident job count across shards.
func (s *Service) NumJobs() int { return len(s.shardOf) }

// Migrations returns the total jobs moved between shards by rebalancing.
func (s *Service) Migrations() int { return s.migrations }

// Rebalances returns how many Rebalance calls actually moved jobs.
func (s *Service) Rebalances() int { return s.rebalances }

// Recoveries returns the total jobs re-routed off dead shards.
func (s *Service) Recoveries() int { return s.recoveries }

// Down reports whether shard k's daemon has been marked dead.
func (s *Service) Down(k int) bool { return s.shards[k].down }

// AnyDown reports whether any dead shard still holds jobs awaiting Recover.
func (s *Service) AnyDown() bool {
	for _, m := range s.shards {
		if m.down && len(m.jobs) > 0 {
			return true
		}
	}
	return false
}

// ShardJobs returns shard k's resident job IDs in admission order (copy).
func (s *Service) ShardJobs(k int) []int {
	return append([]int(nil), s.shards[k].jobs...)
}

// IsDirty reports whether shard k's membership changed since its last
// allocation.
func (s *Service) IsDirty(k int) bool { return s.shards[k].dirty }

// DirtyFlag exposes shard k's staleness flag so round-progress code can mark
// a shard stale when one of its jobs completes (the simulator passes it as
// applyAssignments' needRealloc pointer, exactly as it does with
// cluster.Shard.Dirty).
func (s *Service) DirtyFlag(k int) *bool { return &s.shards[k].dirty }

// MarkDirty flags shard k stale (its membership or demand changed and the
// next AllocateAll must recompute it) and journals the transition. Journaled
// drivers should prefer this over writing through DirtyFlag, which cannot
// journal.
func (s *Service) MarkDirty(k int) error {
	m := s.shards[k]
	if m.dirty {
		return nil
	}
	m.dirty = true
	return s.record(&journalRecord{Kind: recDirty, Shard: k})
}

// HasJob reports whether the job is resident on some shard — true for jobs
// already admitted before a coordinator restart, which a resuming driver must
// not re-admit.
func (s *Service) HasJob(id int) bool {
	_, ok := s.shardOf[id]
	return ok
}

// Resumed reports whether NewService replayed an existing journal (the
// coordinator restarted mid-run) rather than starting fresh.
func (s *Service) Resumed() bool { return s.resumed }

// Round returns the last round sealed by EndRound (0 before any). A resuming
// driver continues from Round()+1.
func (s *Service) Round() int64 { return s.round }

// DegradedRounds returns how many rounds proceeded with at least one shard
// degraded (stale allocation or missed round-plane call).
func (s *Service) DegradedRounds() int { return s.degradedRounds }

// StaleAllocs returns how many rounds shard k served a stale allocation
// because its Allocate failed transiently.
func (s *Service) StaleAllocs(k int) int { return s.shards[k].staleAllocs }

// EndRound seals round r: the round-boundary record is journaled and the
// whole round's records are fsynced in one batch. The round is the
// durability unit — after EndRound returns, a coordinator crash replays up
// to and including round r.
func (s *Service) EndRound(r int64) error {
	if s.ing != nil {
		// Round-boundary ingress work first: token refill, overload ladder,
		// and the trust review. Clamp pushes can degrade the round, so they
		// run before the degraded flag is read below.
		if err := s.applyClamps(s.ing.endRound(r), true); err != nil {
			return err
		}
	}
	s.round = r
	degraded := s.roundDegraded
	s.roundDegraded = false
	if degraded {
		s.degradedRounds++
		s.tel.degraded.Inc()
	}
	s.tel.rounds.Inc()
	// Calls landing between this seal and the next belong to round r+1.
	s.curTrace = obs.RoundTrace(r + 1)
	defer s.syncObs()
	if s.j == nil {
		return nil
	}
	if err := s.j.append(&journalRecord{Kind: recRound, Round: r, Degraded: degraded}); err != nil {
		return err
	}
	sp := s.tel.tr.Begin(obs.RoundTrace(r), "journal.commit")
	err := s.j.commit()
	sp.End(err)
	return err
}

// Alloc returns shard k's mirrored allocation and the job IDs it was
// computed over (nil before the first allocation). Callers must not mutate.
func (s *Service) Alloc(k int) (*core.Allocation, []int) {
	return s.shards[k].alloc, s.shards[k].allocIDs
}

// applyDown is the mirror-side effect of marking a shard dead — shared by the
// live path (markDown) and journal replay.
func (s *Service) applyDown(m *shardMirror) {
	m.down = true
	m.alloc = nil
	m.allocIDs = nil
}

// applyRemove drops a job from shard k's mirror. The placement map entry is
// cleared only if it still points at k: during recovery the install on the
// new shard lands (and is journaled) before the removal from the dead one, so
// an unconditional delete would erase the new placement.
func (s *Service) applyRemove(k, id int) {
	s.shards[k].remove(id)
	if at, ok := s.shardOf[id]; ok && at == k {
		delete(s.shardOf, id)
		if s.ing != nil {
			// The job left its placement entirely (not a recovery's stale
			// source entry): resolve its submission. A migration's
			// remove-then-install transiently resolves and revives — the same
			// sequence live and on replay.
			s.ing.noteRemoved(id)
		}
	}
}

// markDown flags a shard dead and journals the transition.
func (s *Service) markDown(m *shardMirror) error {
	if m.down {
		return nil
	}
	s.applyDown(m)
	s.tel.tr.Begin(s.curTrace, "coord.shard_down").OnShard(m.index).End(nil)
	s.syncObs()
	return s.record(&journalRecord{Kind: recDown, Shard: m.index})
}

// downOrErr marks the shard dead and returns nil when err means the daemon is
// gone or unreachable — a dead connection (CodeShardDown) or a transient
// failure that outlived its retries on a call the round cannot proceed
// without (membership: Install, Remove, Status during reconcile). The caller
// continues without the shard and Recover picks its jobs up. Real protocol
// errors return as-is.
func (s *Service) downOrErr(m *shardMirror, err error) error {
	if err == nil {
		return nil
	}
	if code := CodeOf(err); code == CodeShardDown || IsTransient(code) {
		return s.markDown(m)
	}
	return err
}

// degradeOrErr handles failures of round-plane calls the coordinator can
// proceed without (AssignRound, Observe, Snapshot, Status): a transient
// failure degrades the round — the last known state stands and the round
// report flags it — while a dead connection marks the shard down. This is
// the slow-but-alive path: a daemon that misses one fan-out keeps its jobs.
func (s *Service) degradeOrErr(m *shardMirror, err error) error {
	if err == nil {
		return nil
	}
	code := CodeOf(err)
	if IsTransient(code) {
		s.roundDegraded = true
		return nil
	}
	if code == CodeShardDown {
		return s.markDown(m)
	}
	return err
}

// degradeAlloc records that shard m's Allocate failed transiently this round:
// the round proceeds on m's last allocation, the staleness is journaled and
// flagged, and after staleAfter consecutive stale rounds — or immediately,
// when there is no allocation to fall back on — the shard escalates to down
// so Recover re-routes its jobs.
func (s *Service) degradeAlloc(m *shardMirror) error {
	m.staleRounds++
	m.staleAllocs++
	s.roundDegraded = true
	s.tel.tr.Begin(s.curTrace, "coord.degrade_alloc").OnShard(m.index).
		AttrInt("stale_rounds", int64(m.staleRounds)).End(nil)
	if err := s.record(&journalRecord{Kind: recDegrade, Shard: m.index}); err != nil {
		return err
	}
	if m.alloc == nil || m.staleRounds >= s.staleAfter {
		return s.markDown(m)
	}
	return nil
}

// live returns the live shards in index order.
func (s *Service) live() []*shardMirror {
	out := make([]*shardMirror, 0, len(s.shards))
	for _, m := range s.shards {
		if !m.down {
			out = append(out, m)
		}
	}
	return out
}

// leastLoaded picks the lowest-load shard of ms, ties to the lowest index.
func leastLoaded(ms []*shardMirror) *shardMirror {
	best := ms[0]
	for _, m := range ms[1:] {
		if m.load < best.load {
			best = m
		}
	}
	return best
}

// route picks the destination shard for an arriving job — the
// cluster.Coordinator routing verbatim while every shard is live, falling
// back to least-loaded-live when hash routing lands on a dead daemon.
func (s *Service) route(id int) (*shardMirror, error) {
	live := s.live()
	if len(live) == 0 {
		return nil, Errorf(CodeShardDown, "no live shard daemons")
	}
	switch s.cfg.Route {
	case cluster.RouteLeastLoaded:
		return leastLoaded(live), nil
	default:
		k := id % len(s.shards)
		if k < 0 {
			k += len(s.shards)
		}
		if !s.shards[k].down {
			return s.shards[k], nil
		}
		return leastLoaded(live), nil
	}
}

// pairRows builds the pair candidates to ship with a job landing on m: one
// row pair per co-resident single-worker job, in admission order — the order
// the in-process engine installs them. The destination applies them
// HasPair-gated, so rows for already-cached pairs are harmless.
func (s *Service) pairRows(m *shardMirror, id, scaleFactor int) []PairRows {
	if s.cfg.Pairs == nil || scaleFactor > 1 {
		return nil
	}
	var out []PairRows
	for _, other := range m.jobs {
		if other == id || m.sf[other] > 1 {
			continue
		}
		ta, tb := s.cfg.Pairs(id, other)
		if ta == nil {
			continue
		}
		out = append(out, PairRows{A: id, B: other, Ta: ta, Tb: tb})
	}
	return out
}

// install lands a job on shard m — over the wire, in the mirror, and in the
// journal (after the daemon's ack, so the journal never claims more than the
// daemons hold; a crash between ack and append re-runs as an idempotent
// re-install during reconcile).
func (s *Service) install(m *shardMirror, args InstallArgs, reason installReason) error {
	args.Trace = s.curTrace
	args.Pairs = s.pairRows(m, args.JobID, args.ScaleFactor)
	if err := m.client.Install(args); err != nil {
		return err
	}
	m.add(args.JobID, args.ScaleFactor, args.Tput)
	s.shardOf[args.JobID] = m.index
	if s.ing != nil {
		s.ing.noteAdmitted(args.JobID, m.index)
	}
	return s.record(&journalRecord{Kind: recInstall, Install: &journalInstall{
		Shard:       m.index,
		JobID:       args.JobID,
		ScaleFactor: args.ScaleFactor,
		Tput:        args.Tput,
		Reason:      reason,
	}})
}

// place installs a job on the least-loaded live shard, walking down the
// survivor list as destinations fail — the shared landing path of recovery
// and of migrations whose destination dies mid-move. Each failed attempt
// marks one more shard down, so the walk terminates.
func (s *Service) place(id, scaleFactor int, tput []float64, seeds []policy.Seed, reason installReason) (*shardMirror, error) {
	for {
		live := s.live()
		if len(live) == 0 {
			return nil, Errorf(CodeShardDown, "no live shard daemons")
		}
		to := leastLoaded(live)
		err := s.install(to, InstallArgs{
			JobID:       id,
			ScaleFactor: scaleFactor,
			Tput:        tput,
			Seeds:       seeds,
			Migrated:    reason != reasonAdmit,
		}, reason)
		if err == nil {
			return to, nil
		}
		if err = s.downOrErr(to, err); err != nil {
			return nil, err
		}
	}
}

// Admit routes an arriving job to a shard and installs its isolated
// throughput row (pair candidates ride along), returning the destination
// shard index. If the routed daemon turns out dead, the job re-routes to the
// next choice.
func (s *Service) Admit(id, scaleFactor int, tput []float64) (int, error) {
	// Admission is idempotent: a job already resident (a resumed driver
	// re-submitting its batch) keeps its placement.
	if k, ok := s.shardOf[id]; ok {
		return k, nil
	}
	// Validate the declared row at the edge: a wrong-length, NaN, infinite,
	// or negative vector would corrupt the mirror and every LP downstream.
	if err := ValidateTput(s.numTypes, tput); err != nil {
		return -1, err
	}
	return s.admitJob(id, scaleFactor, tput)
}

// admitJob routes and installs one validated arrival — shared by Admit and
// the submission plane's AdmitPending.
func (s *Service) admitJob(id, scaleFactor int, tput []float64) (int, error) {
	for attempt := 0; attempt <= len(s.shards); attempt++ {
		m, err := s.route(id)
		if err != nil {
			return -1, err
		}
		err = s.install(m, InstallArgs{JobID: id, ScaleFactor: scaleFactor, Tput: tput}, reasonAdmit)
		if err == nil {
			return m.index, nil
		}
		if err = s.downOrErr(m, err); err != nil {
			return -1, err
		}
	}
	return -1, Errorf(CodeShardDown, "no live shard daemons")
}

// Remove drops a departed (completed) job from its shard. A dead daemon's
// mirror is still updated so Recover never resurrects finished jobs.
func (s *Service) Remove(id int) error {
	k, ok := s.shardOf[id]
	if !ok {
		return nil
	}
	m := s.shards[k]
	if !m.down {
		if err := s.downOrErr(m, m.client.Remove(RemoveArgs{JobID: id, Trace: s.curTrace})); err != nil {
			return err
		}
	}
	s.applyRemove(k, id)
	return s.record(&journalRecord{Kind: recRemove, Remove: &journalRemove{Shard: k, JobID: id}})
}

// migrate moves one resident job between live shards, carrying the source's
// warm seeds: Extract pulls the row and seeds and books MigratedOut; Install
// with Migrated set books MigratedIn and imports the seeds only when the
// destination has none — the exact in-process AdoptSeedsFrom gate, evaluated
// daemon-side.
func (s *Service) migrate(id int, from, to *shardMirror) (err error) {
	sp := s.tel.tr.Begin(s.curTrace, "coord.migrate").AttrInt("job", int64(id)).
		AttrInt("from", int64(from.index)).AttrInt("to", int64(to.index))
	defer func() { sp.End(err) }()
	rep, err := from.client.Extract(ExtractArgs{JobID: id, Trace: s.curTrace})
	if err != nil {
		if IsTransient(CodeOf(err)) {
			// Extract is the one non-idempotent call on the surface: a lost
			// reply is ambiguous — the daemon may or may not have removed the
			// job. Reinstall from the mirror to resolve it: a no-op if the
			// extract never landed, a restore (warm via the shard's own seeds)
			// if it did. Either way the job stays put and the move is dropped.
			args := InstallArgs{
				JobID:       id,
				ScaleFactor: from.sf[id],
				Tput:        from.tput[id],
				Seeds:       from.seeds,
				Migrated:    true,
				Trace:       s.curTrace,
			}
			args.Pairs = s.pairRows(from, id, args.ScaleFactor)
			if rerr := from.client.Install(args); rerr != nil {
				if derr := s.downOrErr(from, rerr); derr != nil {
					return derr
				}
			}
		}
		return err
	}
	// Extract landed: the source daemon no longer holds the job, so the
	// mirror and journal reflect that before any install attempt (place may
	// otherwise pick the source as a fallback destination and double-add).
	if err := s.record(&journalRecord{Kind: recRemove, Remove: &journalRemove{Shard: from.index, JobID: id}}); err != nil {
		return err
	}
	s.applyRemove(from.index, id)
	err = s.install(to, InstallArgs{
		JobID:       id,
		ScaleFactor: rep.ScaleFactor,
		Tput:        rep.Tput,
		Seeds:       rep.Seeds,
		Migrated:    true,
	}, reasonMigrate)
	if err != nil {
		if err = s.downOrErr(to, err); err != nil {
			return err
		}
		// The destination died holding nothing (Install failed); the job is
		// already extracted, so land it on a surviving shard instead.
		if _, err = s.place(id, rep.ScaleFactor, rep.Tput, rep.Seeds, reasonMigrate); err != nil {
			return err
		}
	}
	s.migrations++
	s.tel.migrations.Inc()
	return nil
}

// Rebalance evens device demand across the live shards by migrating the most
// recently admitted movable job from the most loaded shard to the least
// loaded one until the gap stops shrinking — the cluster.Coordinator
// algorithm verbatim, decided entirely on the mirror.
func (s *Service) Rebalance() ([]cluster.Migration, error) {
	live := s.live()
	if len(live) < 2 {
		return nil, nil
	}
	var migs []cluster.Migration
	for moves := 0; moves <= len(s.shardOf); moves++ {
		hi, lo := live[0], live[0]
		for _, m := range live[1:] {
			if m.load > hi.load {
				hi = m
			}
			if m.load < lo.load {
				lo = m
			}
		}
		gap := hi.load - lo.load
		if gap <= 1 {
			break
		}
		// Most recent admission whose demand strictly shrinks the gap:
		// moving demand d turns the gap into |gap - 2d|, an improvement
		// exactly when d < gap.
		pick := -1
		for i := len(hi.jobs) - 1; i >= 0; i-- {
			if hi.sf[hi.jobs[i]] < gap {
				pick = hi.jobs[i]
				break
			}
		}
		if pick < 0 {
			break
		}
		if err := s.migrate(pick, hi, lo); err != nil {
			// A daemon died or went unreachable mid-rebalance: stop moving,
			// let Recover sort the membership out, and surface real protocol
			// errors. (A transient Extract failure already reinstalled the
			// job at its source inside migrate.)
			if code := CodeOf(err); code == CodeShardDown || IsTransient(code) {
				break
			}
			return migs, err
		}
		migs = append(migs, cluster.Migration{Job: pick, From: hi.index, To: lo.index})
	}
	if len(migs) > 0 {
		s.rebalances++
		s.tel.rebalances.Inc()
		if err := s.record(&journalRecord{Kind: recRebalance}); err != nil {
			return migs, err
		}
	}
	return migs, nil
}

// AllocateAll recomputes every stale live shard's allocation concurrently
// (stale: membership changed since the last allocation, or none exists; force
// recomputes clean shards too). Results land in the mirror; a daemon death
// marks the shard down instead of failing the call. The returned error is
// the lowest-index protocol failure.
func (s *Service) AllocateAll(round int64, info func(id int) policy.JobInfo, force bool) error {
	type slot struct {
		rep AllocateReply
		err error
		ran bool
	}
	slots := make([]slot, len(s.shards))
	var wg sync.WaitGroup
	for k, m := range s.shards {
		if m.down || (!force && !m.dirty && m.alloc != nil) {
			continue
		}
		infos := make([]policy.JobInfo, 0, len(m.jobs))
		for _, id := range m.jobs {
			ji := info(id)
			ji.ID = id
			infos = append(infos, ji)
		}
		slots[k].ran = true
		wg.Add(1)
		go func(k int, m *shardMirror, args AllocateArgs) {
			defer wg.Done()
			sp := s.tel.tr.Begin(args.Trace, "coord.allocate").OnShard(k).
				AttrInt("jobs", int64(len(args.Infos)))
			slots[k].rep, slots[k].err = m.client.Allocate(args)
			sp.End(slots[k].err)
		}(k, m, AllocateArgs{Round: round, Infos: infos, Trace: obs.RoundTrace(round)})
	}
	wg.Wait()
	for k, m := range s.shards {
		if !slots[k].ran {
			continue
		}
		if err := slots[k].err; err != nil {
			switch code := CodeOf(err); {
			case code == CodeShardDown:
				if err := s.markDown(m); err != nil {
					return err
				}
			case IsTransient(code):
				// Slow but alive: the round proceeds on this shard's last
				// allocation, flagged stale; repeated staleness escalates to
				// down inside degradeAlloc.
				if err := s.degradeAlloc(m); err != nil {
					return err
				}
			default:
				return err
			}
			continue
		}
		m.alloc = &core.Allocation{Units: slots[k].rep.Units, X: slots[k].rep.X}
		m.allocIDs = slots[k].rep.IDs
		m.dirty = false
		m.staleRounds = 0
		err := s.record(&journalRecord{Kind: recAlloc, Alloc: &journalAlloc{
			Shard: k,
			IDs:   slots[k].rep.IDs,
			Units: slots[k].rep.Units,
			X:     slots[k].rep.X,
		}})
		if err != nil {
			return err
		}
	}
	return nil
}

// AssignRound runs one mechanism round on every live shard concurrently,
// validates the merged result against the per-shard and global worker
// budgets, and returns the per-shard assignments indexed by shard. skip
// masks jobs that must not run (may be nil); a dead daemon contributes an
// empty round.
func (s *Service) AssignRound(round int64, roundSeconds float64, skip func(id int) bool) ([][]scheduler.Assignment, error) {
	perShard := make([][]scheduler.Assignment, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for k, m := range s.shards {
		if m.down || m.alloc == nil || len(m.alloc.Units) == 0 {
			continue
		}
		var skipIDs []int
		if skip != nil {
			for _, id := range m.allocIDs {
				if skip(id) {
					skipIDs = append(skipIDs, id)
				}
			}
		}
		wg.Add(1)
		go func(k int, m *shardMirror, args AssignRoundArgs) {
			defer wg.Done()
			sp := s.tel.tr.Begin(args.Trace, "coord.assign").OnShard(k).
				AttrInt("skip", int64(len(args.SkipJobs)))
			rep, err := m.client.AssignRound(args)
			sp.End(err)
			perShard[k], errs[k] = rep.Assigns, err
		}(k, m, AssignRoundArgs{Round: round, RoundSeconds: roundSeconds, SkipJobs: skipIDs, Trace: obs.RoundTrace(round)})
	}
	wg.Wait()
	for k, m := range s.shards {
		if err := errs[k]; err != nil {
			perShard[k] = nil
			if err = s.degradeOrErr(m, err); err != nil {
				return nil, err
			}
		}
	}
	if err := s.ValidateRound(perShard); err != nil {
		return nil, err
	}
	return perShard, nil
}

// ValidateRound verifies one global round's budget invariants on the mirror:
// every shard within its own worker slice, and the union within the global
// per-type budget — cluster.Coordinator.ValidateRound over mirrored state.
func (s *Service) ValidateRound(perShard [][]scheduler.Assignment) error {
	if len(perShard) != len(s.shards) {
		return Errorf(CodeInternal, "%d assignment sets for %d shards", len(perShard), len(s.shards))
	}
	total := make([]int, s.numTypes)
	for k, assigns := range perShard {
		if len(assigns) == 0 {
			continue
		}
		m := s.shards[k]
		used := scheduler.UsedWorkers(assigns, m.unitScaleFactor, s.numTypes)
		if err := scheduler.WithinBudget(used, s.split[k]); err != nil {
			return Errorf(CodeInternal, "shard %d: %v", k, err)
		}
		for j := range used {
			total[j] += used[j]
		}
	}
	if err := scheduler.WithinBudget(total, s.globalInts); err != nil {
		return Errorf(CodeInternal, "merged round: %v", err)
	}
	return nil
}

// Observe flushes one round's measured pair throughputs to shard k, in
// observation order.
func (s *Service) Observe(k int, obs []PairObservation) error {
	m := s.shards[k]
	if m.down || len(obs) == 0 {
		return nil
	}
	return s.degradeOrErr(m, m.client.Observe(ObserveArgs{Obs: obs, Trace: s.curTrace}))
}

// SnapshotAll pulls every live shard's recovery snapshot — warm seeds plus
// accounting — into the mirror. This is the coordinator's periodic
// checkpoint: if a daemon later dies, its jobs re-route with these seeds and
// its last status stays mergeable.
func (s *Service) SnapshotAll() error {
	for _, m := range s.shards {
		if m.down {
			continue
		}
		rep, err := m.client.Snapshot()
		if err != nil {
			if err = s.degradeOrErr(m, err); err != nil {
				return err
			}
			continue
		}
		m.seeds = rep.Seeds
		m.status = rep.Status
		err = s.record(&journalRecord{Kind: recSnapshot, Snapshot: &journalSnapshot{
			Shard:  m.index,
			Seeds:  rep.Seeds,
			Status: rep.Status,
		}})
		if err != nil {
			return err
		}
	}
	return nil
}

// PingAll probes every live daemon, marking the unresponsive ones down, and
// returns the indices of newly dead shards.
func (s *Service) PingAll() ([]int, error) {
	var dead []int
	for _, m := range s.shards {
		if m.down {
			continue
		}
		if m.client.Ping() != nil {
			if err := s.markDown(m); err != nil {
				return dead, err
			}
			dead = append(dead, m.index)
		}
	}
	return dead, nil
}

// Recover re-routes every job resident on dead shards onto the live ones, in
// the dead shard's admission order, least-loaded destination first. Each job
// re-installs from the mirror's throughput row with the dead shard's last
// snapshot seeds, so the destination — or a fresh replacement daemon — warm
// starts via basis remap instead of solving cold; destinations that already
// hold seeds keep their own (the better cover) and still solve the enlarged
// job set remapped. The dead shard's last snapshot status remains mergeable
// through Stats. Returns the moves for the caller's placement bookkeeping.
// The pass runs to a fixpoint: any number of shards may be dead on entry —
// concurrent loss in one round — and destinations may die mid-recovery; the
// outer loop re-scans until no dead shard holds jobs, so every job either
// lands on a survivor or the pass reports that none remain. Each job's
// install on its new shard is journaled before the dead shard's mirror drops
// it, so a coordinator crash mid-recovery replays to a state where the job is
// placed exactly once.
func (s *Service) Recover() ([]cluster.Migration, error) {
	var migs []cluster.Migration
	for {
		var dead *shardMirror
		for _, m := range s.shards {
			if m.down && len(m.jobs) > 0 {
				dead = m
				break
			}
		}
		if dead == nil {
			return migs, nil
		}
		for _, id := range append([]int(nil), dead.jobs...) {
			to, err := s.place(id, dead.sf[id], dead.tput[id], dead.seeds, reasonRecover)
			if err != nil {
				return migs, err
			}
			if err := s.record(&journalRecord{Kind: recRemove, Remove: &journalRemove{Shard: dead.index, JobID: id}}); err != nil {
				return migs, err
			}
			s.applyRemove(dead.index, id)
			s.recoveries++
			s.tel.recoveries.Inc()
			migs = append(migs, cluster.Migration{Job: id, From: dead.index, To: to.index})
		}
	}
}

// Stats returns per-shard accounting in shard order: a fresh Status pull for
// live daemons, the last snapshot for dead ones — so a crashed shard's solve
// work stays countable in the merged result.
func (s *Service) Stats() ([]ShardStatus, error) {
	out := make([]ShardStatus, len(s.shards))
	for k, m := range s.shards {
		if m.down {
			out[k] = m.status
			continue
		}
		st, err := m.client.Status()
		if err != nil {
			// Degrade to the last known accounting; a dead connection marks
			// the shard down so its jobs recover.
			if err = s.degradeOrErr(m, err); err != nil {
				return nil, err
			}
			out[k] = m.status
			continue
		}
		m.status = st
		out[k] = st
	}
	return out, nil
}

// JobShards returns the job → shard index placement map (copy; exposed for
// tests and observability).
func (s *Service) JobShards() map[int]int {
	out := make(map[int]int, len(s.shardOf))
	for id, k := range s.shardOf {
		out[id] = k
	}
	return out
}

// Close closes every shard client connection and commits and closes the
// journal, if any.
func (s *Service) Close() error {
	var first error
	for _, m := range s.shards {
		if err := m.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.j != nil {
		if err := s.j.close(); err != nil && first == nil {
			first = err
		}
		s.j = nil
	}
	return first
}
