package rpc

import (
	"sync"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// PairSource supplies the colocated throughput rows for a candidate
// space-sharing pair (ta for job a, tb for job b, indexed by accelerator
// type). The service queries it when a job lands on a shard — admission,
// migration, or recovery — to ship pair candidates alongside the job; shards
// apply them HasPair-gated, so the source may answer for already-cached pairs
// without harm. Nil disables space sharing.
type PairSource func(a, b int) (ta, tb []float64)

// ServiceConfig parameterizes a remote coordinator over shard daemons. The
// fields mirror cluster.CoordinatorConfig — same cluster split, same routing,
// same pair knobs — because the Service must make byte-identical decisions to
// the in-process Coordinator; the additions are the wire-only concerns
// (policy by name, resolved LP options, the pair source).
type ServiceConfig struct {
	// Cluster is the global cluster; its per-type device counts are split
	// across the shard daemons with cluster.SplitWorkerCounts.
	Cluster cluster.Spec
	// Policy names the scheduling policy every daemon instantiates.
	Policy PolicySpec
	// LP carries the solver knobs. NewService resolves Auto fields against
	// this process's defaults before pushing, so daemons solve with the
	// coordinator's settings regardless of their local environment.
	LP lp.Options
	// ColdSolves disables the daemons' solve contexts (benchmark baseline).
	ColdSolves bool
	// Route selects arrival routing (default hash by job ID).
	Route cluster.RoutePolicy
	// PairGainThreshold / MaxPairsPerJob parameterize space-sharing pair
	// candidates exactly as in cluster.CoordinatorConfig.
	PairGainThreshold float64
	MaxPairsPerJob    int
	// Pairs supplies colocated throughput rows for pair candidates; nil
	// disables pair shipping (no space sharing).
	Pairs PairSource
}

// shardMirror is the coordinator's local view of one shard daemon: enough
// membership, demand, and allocation state to make every routing, rebalance,
// and staleness decision without a remote read, plus the last recovery
// snapshot. The mirror is authoritative for control decisions; the daemon is
// authoritative for solves and round mechanics.
type shardMirror struct {
	index  int
	client ShardClient
	down   bool

	jobs   []int // resident job IDs in admission order
	jobPos map[int]int
	sf     map[int]int       // clamped scale factors
	tput   map[int][]float64 // isolated throughput rows (recovery re-install)
	load   int               // total device demand (sum of scale factors)
	dirty  bool              // membership changed since the last allocation

	alloc    *core.Allocation // last AllocateReply, rebuilt coordinator-side
	allocIDs []int

	seeds  []policy.Seed // last snapshot's warm seeds
	status ShardStatus   // last known accounting (survives the daemon)
}

func (m *shardMirror) add(id, scaleFactor int, tput []float64) {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	m.jobPos[id] = len(m.jobs)
	m.jobs = append(m.jobs, id)
	m.sf[id] = scaleFactor
	m.tput[id] = append([]float64(nil), tput...)
	m.load += scaleFactor
	m.dirty = true
}

func (m *shardMirror) remove(id int) {
	pos, ok := m.jobPos[id]
	if !ok {
		return
	}
	m.load -= m.sf[id]
	m.jobs = append(m.jobs[:pos], m.jobs[pos+1:]...)
	delete(m.jobPos, id)
	delete(m.sf, id)
	delete(m.tput, id)
	for i := pos; i < len(m.jobs); i++ {
		m.jobPos[m.jobs[i]] = i
	}
	m.dirty = true
}

// unitScaleFactor is the max member scale factor of unit u in the mirrored
// allocation — the mirror's copy of Shard.unitScaleFactor, used to validate
// merged rounds against the worker budgets.
func (m *shardMirror) unitScaleFactor(u int) int {
	sf := 1
	for _, local := range m.alloc.Units[u].Jobs {
		if v := m.sf[m.allocIDs[local]]; v > sf {
			sf = v
		}
	}
	return sf
}

// Service is the remote coordinator of the cluster service: the
// cluster.Coordinator algorithms — deterministic routing, rebalance by
// warm-basis migration, concurrent allocation fan-out, round merging under
// the global budget — re-expressed over the control plane, driving shard
// daemons through ShardClients instead of in-process Shards. It keeps a
// local mirror of each daemon's membership and load so every control
// decision replicates the in-process coordinator's byte for byte, pulls
// periodic basis snapshots, and on daemon death re-routes the dead shard's
// jobs onto the survivors with the snapshot seeds so their next solves land
// remapped, not cold.
//
// A Service is not safe for concurrent use; like the in-process Coordinator,
// all mutating entry points are single-threaded by design and the
// concurrency lives inside the fan-out calls.
type Service struct {
	cfg        ServiceConfig
	numTypes   int
	globalInts []int
	split      [][]int
	shards     []*shardMirror
	shardOf    map[int]int
	migrations int
	rebalances int
	recoveries int
}

// NewService validates the config, splits the cluster across the clients,
// and pushes each daemon its configuration (handshake included). The caller
// retains ownership of the clients; Close closes them.
func NewService(cfg ServiceConfig, clients []ShardClient) (*Service, error) {
	if len(clients) == 0 {
		return nil, Errorf(CodeBadRequest, "no shard clients")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	numTypes := cfg.Cluster.NumTypes()
	counts := make([]int, numTypes)
	perServer := make([]int, numTypes)
	for j, t := range cfg.Cluster.Types {
		counts[j] = t.Count
		perServer[j] = t.PerServer
	}
	prices := cfg.Cluster.Prices()
	split := cluster.SplitWorkerCounts(counts, len(clients))
	// Resolve Auto knobs here so every daemon solves with this process's
	// settings, not its own environment's.
	lpOpts := cfg.LP.Resolve()

	s := &Service{
		cfg:        cfg,
		numTypes:   numTypes,
		globalInts: counts,
		split:      split,
		shardOf:    map[int]int{},
	}
	for k, client := range clients {
		if _, err := client.Hello(HelloArgs{Version: ProtocolVersion, Role: "coordinator"}); err != nil {
			return nil, err
		}
		err := client.Configure(ShardConfig{
			Index:             k,
			WorkerInts:        split[k],
			PerServer:         perServer,
			Prices:            prices,
			Policy:            cfg.Policy,
			LP:                lpOpts,
			ColdSolves:        cfg.ColdSolves,
			PairGainThreshold: cfg.PairGainThreshold,
			MaxPairsPerJob:    cfg.MaxPairsPerJob,
		})
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shardMirror{
			index:  k,
			client: client,
			jobPos: map[int]int{},
			sf:     map[int]int{},
			tput:   map[int][]float64{},
			status: ShardStatus{Index: k},
		})
	}
	return s, nil
}

// NumShards returns the partition count (live and dead).
func (s *Service) NumShards() int { return len(s.shards) }

// NumJobs returns the total resident job count across shards.
func (s *Service) NumJobs() int { return len(s.shardOf) }

// Migrations returns the total jobs moved between shards by rebalancing.
func (s *Service) Migrations() int { return s.migrations }

// Rebalances returns how many Rebalance calls actually moved jobs.
func (s *Service) Rebalances() int { return s.rebalances }

// Recoveries returns the total jobs re-routed off dead shards.
func (s *Service) Recoveries() int { return s.recoveries }

// Down reports whether shard k's daemon has been marked dead.
func (s *Service) Down(k int) bool { return s.shards[k].down }

// AnyDown reports whether any dead shard still holds jobs awaiting Recover.
func (s *Service) AnyDown() bool {
	for _, m := range s.shards {
		if m.down && len(m.jobs) > 0 {
			return true
		}
	}
	return false
}

// ShardJobs returns shard k's resident job IDs in admission order (copy).
func (s *Service) ShardJobs(k int) []int {
	return append([]int(nil), s.shards[k].jobs...)
}

// IsDirty reports whether shard k's membership changed since its last
// allocation.
func (s *Service) IsDirty(k int) bool { return s.shards[k].dirty }

// DirtyFlag exposes shard k's staleness flag so round-progress code can mark
// a shard stale when one of its jobs completes (the simulator passes it as
// applyAssignments' needRealloc pointer, exactly as it does with
// cluster.Shard.Dirty).
func (s *Service) DirtyFlag(k int) *bool { return &s.shards[k].dirty }

// Alloc returns shard k's mirrored allocation and the job IDs it was
// computed over (nil before the first allocation). Callers must not mutate.
func (s *Service) Alloc(k int) (*core.Allocation, []int) {
	return s.shards[k].alloc, s.shards[k].allocIDs
}

// markDown flags a shard dead after a transport-level failure.
func (s *Service) markDown(m *shardMirror) {
	m.down = true
	m.alloc = nil
	m.allocIDs = nil
}

// downOrErr marks the shard dead and returns nil when err is a transport
// failure (the caller continues without the shard; Recover picks its jobs
// up), and returns err itself for real protocol errors.
func (s *Service) downOrErr(m *shardMirror, err error) error {
	if err == nil {
		return nil
	}
	if CodeOf(err) == CodeShardDown {
		s.markDown(m)
		return nil
	}
	return err
}

// live returns the live shards in index order.
func (s *Service) live() []*shardMirror {
	out := make([]*shardMirror, 0, len(s.shards))
	for _, m := range s.shards {
		if !m.down {
			out = append(out, m)
		}
	}
	return out
}

// leastLoaded picks the lowest-load shard of ms, ties to the lowest index.
func leastLoaded(ms []*shardMirror) *shardMirror {
	best := ms[0]
	for _, m := range ms[1:] {
		if m.load < best.load {
			best = m
		}
	}
	return best
}

// route picks the destination shard for an arriving job — the
// cluster.Coordinator routing verbatim while every shard is live, falling
// back to least-loaded-live when hash routing lands on a dead daemon.
func (s *Service) route(id int) (*shardMirror, error) {
	live := s.live()
	if len(live) == 0 {
		return nil, Errorf(CodeShardDown, "no live shard daemons")
	}
	switch s.cfg.Route {
	case cluster.RouteLeastLoaded:
		return leastLoaded(live), nil
	default:
		k := id % len(s.shards)
		if k < 0 {
			k += len(s.shards)
		}
		if !s.shards[k].down {
			return s.shards[k], nil
		}
		return leastLoaded(live), nil
	}
}

// pairRows builds the pair candidates to ship with a job landing on m: one
// row pair per co-resident single-worker job, in admission order — the order
// the in-process engine installs them. The destination applies them
// HasPair-gated, so rows for already-cached pairs are harmless.
func (s *Service) pairRows(m *shardMirror, id, scaleFactor int) []PairRows {
	if s.cfg.Pairs == nil || scaleFactor > 1 {
		return nil
	}
	var out []PairRows
	for _, other := range m.jobs {
		if other == id || m.sf[other] > 1 {
			continue
		}
		ta, tb := s.cfg.Pairs(id, other)
		if ta == nil {
			continue
		}
		out = append(out, PairRows{A: id, B: other, Ta: ta, Tb: tb})
	}
	return out
}

// install lands a job on shard m — over the wire and in the mirror.
func (s *Service) install(m *shardMirror, args InstallArgs) error {
	args.Pairs = s.pairRows(m, args.JobID, args.ScaleFactor)
	if err := m.client.Install(args); err != nil {
		return err
	}
	m.add(args.JobID, args.ScaleFactor, args.Tput)
	s.shardOf[args.JobID] = m.index
	return nil
}

// Admit routes an arriving job to a shard and installs its isolated
// throughput row (pair candidates ride along), returning the destination
// shard index. If the routed daemon turns out dead, the job re-routes to the
// next choice.
func (s *Service) Admit(id, scaleFactor int, tput []float64) (int, error) {
	for attempt := 0; attempt <= len(s.shards); attempt++ {
		m, err := s.route(id)
		if err != nil {
			return -1, err
		}
		err = s.install(m, InstallArgs{JobID: id, ScaleFactor: scaleFactor, Tput: tput})
		if err == nil {
			return m.index, nil
		}
		if err = s.downOrErr(m, err); err != nil {
			return -1, err
		}
	}
	return -1, Errorf(CodeShardDown, "no live shard daemons")
}

// Remove drops a departed (completed) job from its shard. A dead daemon's
// mirror is still updated so Recover never resurrects finished jobs.
func (s *Service) Remove(id int) error {
	k, ok := s.shardOf[id]
	if !ok {
		return nil
	}
	m := s.shards[k]
	if !m.down {
		if err := s.downOrErr(m, m.client.Remove(RemoveArgs{JobID: id})); err != nil {
			return err
		}
	}
	m.remove(id)
	delete(s.shardOf, id)
	return nil
}

// migrate moves one resident job between live shards, carrying the source's
// warm seeds: Extract pulls the row and seeds and books MigratedOut; Install
// with Migrated set books MigratedIn and imports the seeds only when the
// destination has none — the exact in-process AdoptSeedsFrom gate, evaluated
// daemon-side.
func (s *Service) migrate(id int, from, to *shardMirror) error {
	rep, err := from.client.Extract(ExtractArgs{JobID: id})
	if err != nil {
		return err
	}
	from.remove(id)
	delete(s.shardOf, id)
	err = s.install(to, InstallArgs{
		JobID:       id,
		ScaleFactor: rep.ScaleFactor,
		Tput:        rep.Tput,
		Seeds:       rep.Seeds,
		Migrated:    true,
	})
	if err != nil {
		return err
	}
	s.migrations++
	return nil
}

// Rebalance evens device demand across the live shards by migrating the most
// recently admitted movable job from the most loaded shard to the least
// loaded one until the gap stops shrinking — the cluster.Coordinator
// algorithm verbatim, decided entirely on the mirror.
func (s *Service) Rebalance() ([]cluster.Migration, error) {
	live := s.live()
	if len(live) < 2 {
		return nil, nil
	}
	var migs []cluster.Migration
	for moves := 0; moves <= len(s.shardOf); moves++ {
		hi, lo := live[0], live[0]
		for _, m := range live[1:] {
			if m.load > hi.load {
				hi = m
			}
			if m.load < lo.load {
				lo = m
			}
		}
		gap := hi.load - lo.load
		if gap <= 1 {
			break
		}
		// Most recent admission whose demand strictly shrinks the gap:
		// moving demand d turns the gap into |gap - 2d|, an improvement
		// exactly when d < gap.
		pick := -1
		for i := len(hi.jobs) - 1; i >= 0; i-- {
			if hi.sf[hi.jobs[i]] < gap {
				pick = hi.jobs[i]
				break
			}
		}
		if pick < 0 {
			break
		}
		if err := s.migrate(pick, hi, lo); err != nil {
			// A daemon died mid-rebalance: stop moving, let Recover sort the
			// membership out, and surface real protocol errors.
			if CodeOf(err) == CodeShardDown {
				break
			}
			return migs, err
		}
		migs = append(migs, cluster.Migration{Job: pick, From: hi.index, To: lo.index})
	}
	if len(migs) > 0 {
		s.rebalances++
	}
	return migs, nil
}

// AllocateAll recomputes every stale live shard's allocation concurrently
// (stale: membership changed since the last allocation, or none exists; force
// recomputes clean shards too). Results land in the mirror; a daemon death
// marks the shard down instead of failing the call. The returned error is
// the lowest-index protocol failure.
func (s *Service) AllocateAll(round int64, info func(id int) policy.JobInfo, force bool) error {
	type slot struct {
		rep AllocateReply
		err error
		ran bool
	}
	slots := make([]slot, len(s.shards))
	var wg sync.WaitGroup
	for k, m := range s.shards {
		if m.down || (!force && !m.dirty && m.alloc != nil) {
			continue
		}
		infos := make([]policy.JobInfo, 0, len(m.jobs))
		for _, id := range m.jobs {
			ji := info(id)
			ji.ID = id
			infos = append(infos, ji)
		}
		slots[k].ran = true
		wg.Add(1)
		go func(k int, m *shardMirror, args AllocateArgs) {
			defer wg.Done()
			slots[k].rep, slots[k].err = m.client.Allocate(args)
		}(k, m, AllocateArgs{Round: round, Infos: infos})
	}
	wg.Wait()
	for k, m := range s.shards {
		if !slots[k].ran {
			continue
		}
		if err := slots[k].err; err != nil {
			if err = s.downOrErr(m, err); err != nil {
				return err
			}
			continue
		}
		m.alloc = &core.Allocation{Units: slots[k].rep.Units, X: slots[k].rep.X}
		m.allocIDs = slots[k].rep.IDs
		m.dirty = false
	}
	return nil
}

// AssignRound runs one mechanism round on every live shard concurrently,
// validates the merged result against the per-shard and global worker
// budgets, and returns the per-shard assignments indexed by shard. skip
// masks jobs that must not run (may be nil); a dead daemon contributes an
// empty round.
func (s *Service) AssignRound(round int64, roundSeconds float64, skip func(id int) bool) ([][]scheduler.Assignment, error) {
	perShard := make([][]scheduler.Assignment, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for k, m := range s.shards {
		if m.down || m.alloc == nil || len(m.alloc.Units) == 0 {
			continue
		}
		var skipIDs []int
		if skip != nil {
			for _, id := range m.allocIDs {
				if skip(id) {
					skipIDs = append(skipIDs, id)
				}
			}
		}
		wg.Add(1)
		go func(k int, m *shardMirror, args AssignRoundArgs) {
			defer wg.Done()
			rep, err := m.client.AssignRound(args)
			perShard[k], errs[k] = rep.Assigns, err
		}(k, m, AssignRoundArgs{Round: round, RoundSeconds: roundSeconds, SkipJobs: skipIDs})
	}
	wg.Wait()
	for k, m := range s.shards {
		if err := errs[k]; err != nil {
			perShard[k] = nil
			if err = s.downOrErr(m, err); err != nil {
				return nil, err
			}
		}
	}
	if err := s.ValidateRound(perShard); err != nil {
		return nil, err
	}
	return perShard, nil
}

// ValidateRound verifies one global round's budget invariants on the mirror:
// every shard within its own worker slice, and the union within the global
// per-type budget — cluster.Coordinator.ValidateRound over mirrored state.
func (s *Service) ValidateRound(perShard [][]scheduler.Assignment) error {
	if len(perShard) != len(s.shards) {
		return Errorf(CodeInternal, "%d assignment sets for %d shards", len(perShard), len(s.shards))
	}
	total := make([]int, s.numTypes)
	for k, assigns := range perShard {
		if len(assigns) == 0 {
			continue
		}
		m := s.shards[k]
		used := scheduler.UsedWorkers(assigns, m.unitScaleFactor, s.numTypes)
		if err := scheduler.WithinBudget(used, s.split[k]); err != nil {
			return Errorf(CodeInternal, "shard %d: %v", k, err)
		}
		for j := range used {
			total[j] += used[j]
		}
	}
	if err := scheduler.WithinBudget(total, s.globalInts); err != nil {
		return Errorf(CodeInternal, "merged round: %v", err)
	}
	return nil
}

// Observe flushes one round's measured pair throughputs to shard k, in
// observation order.
func (s *Service) Observe(k int, obs []PairObservation) error {
	m := s.shards[k]
	if m.down || len(obs) == 0 {
		return nil
	}
	return s.downOrErr(m, m.client.Observe(ObserveArgs{Obs: obs}))
}

// SnapshotAll pulls every live shard's recovery snapshot — warm seeds plus
// accounting — into the mirror. This is the coordinator's periodic
// checkpoint: if a daemon later dies, its jobs re-route with these seeds and
// its last status stays mergeable.
func (s *Service) SnapshotAll() error {
	for _, m := range s.shards {
		if m.down {
			continue
		}
		rep, err := m.client.Snapshot()
		if err != nil {
			if err = s.downOrErr(m, err); err != nil {
				return err
			}
			continue
		}
		m.seeds = rep.Seeds
		m.status = rep.Status
	}
	return nil
}

// PingAll probes every live daemon, marking the unresponsive ones down, and
// returns the indices of newly dead shards.
func (s *Service) PingAll() []int {
	var dead []int
	for _, m := range s.shards {
		if m.down {
			continue
		}
		if m.client.Ping() != nil {
			s.markDown(m)
			dead = append(dead, m.index)
		}
	}
	return dead
}

// Recover re-routes every job resident on dead shards onto the live ones, in
// the dead shard's admission order, least-loaded destination first. Each job
// re-installs from the mirror's throughput row with the dead shard's last
// snapshot seeds, so the destination — or a fresh replacement daemon — warm
// starts via basis remap instead of solving cold; destinations that already
// hold seeds keep their own (the better cover) and still solve the enlarged
// job set remapped. The dead shard's last snapshot status remains mergeable
// through Stats. Returns the moves for the caller's placement bookkeeping.
func (s *Service) Recover() ([]cluster.Migration, error) {
	var migs []cluster.Migration
	for _, dead := range s.shards {
		if !dead.down || len(dead.jobs) == 0 {
			continue
		}
		jobs := append([]int(nil), dead.jobs...)
		for _, id := range jobs {
			live := s.live()
			if len(live) == 0 {
				return migs, Errorf(CodeShardDown, "no live shard daemons to recover onto")
			}
			to := leastLoaded(live)
			sf, tput := dead.sf[id], dead.tput[id]
			dead.remove(id)
			delete(s.shardOf, id)
			err := s.install(to, InstallArgs{
				JobID:       id,
				ScaleFactor: sf,
				Tput:        tput,
				Seeds:       dead.seeds,
				Migrated:    true,
			})
			if err != nil {
				if err = s.downOrErr(to, err); err != nil {
					return migs, err
				}
				// Destination died too; retry this job on the remaining live
				// set by re-entering the loop body via a fresh install.
				dead.add(id, sf, tput)
				s.shardOf[id] = dead.index
				continue
			}
			s.recoveries++
			migs = append(migs, cluster.Migration{Job: id, From: dead.index, To: to.index})
		}
	}
	return migs, nil
}

// Stats returns per-shard accounting in shard order: a fresh Status pull for
// live daemons, the last snapshot for dead ones — so a crashed shard's solve
// work stays countable in the merged result.
func (s *Service) Stats() ([]ShardStatus, error) {
	out := make([]ShardStatus, len(s.shards))
	for k, m := range s.shards {
		if m.down {
			out[k] = m.status
			continue
		}
		st, err := m.client.Status()
		if err != nil {
			if err = s.downOrErr(m, err); err != nil {
				return nil, err
			}
			out[k] = m.status
			continue
		}
		m.status = st
		out[k] = st
	}
	return out, nil
}

// JobShards returns the job → shard index placement map (copy; exposed for
// tests and observability).
func (s *Service) JobShards() map[int]int {
	out := make(map[int]int, len(s.shardOf))
	for id, k := range s.shardOf {
		out[id] = k
	}
	return out
}

// Close closes every shard client connection.
func (s *Service) Close() error {
	var first error
	for _, m := range s.shards {
		if err := m.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
