package rpc

// The submission plane's network face: tenants dial a SubmitClient at the
// coordinator and stream Submit / Withdraw / Poll. The surface is fully
// idempotent (submissions dedupe by key, withdrawals and polls are safe to
// repeat), so the client retries transient failures under the same call
// policy the shard plane uses; CodeOverload is deliberately NOT retried here
// — backpressure is the caller's to honor, via RetryAfter.

import (
	"fmt"
	"net"
	gorpc "net/rpc"
	"time"
)

// submitServiceName is the net/rpc service name of the submission plane.
const submitServiceName = "GavelSubmit"

// SubmitServer exposes one Service's submission surface over TCP gob. The
// handlers call only the Service's concurrent-safe ingress methods, so the
// server runs alongside the round loop without extra locking.
type SubmitServer struct {
	svc *Service
	srv *tcpServer
}

// NewSubmitServer wraps svc for serving. The Service must have been built
// with ServiceConfig.Admission set.
func NewSubmitServer(svc *Service) *SubmitServer { return &SubmitServer{svc: svc} }

// Serve starts the TCP listener on addr ("host:port"), returning the bound
// address (useful with ":0").
func (s *SubmitServer) Serve(addr string) (string, error) {
	srv := gorpc.NewServer()
	if err := srv.RegisterName(submitServiceName, s); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.srv = newTCPServer(ln, srv)
	return ln.Addr().String(), nil
}

// Close stops the listener and tears down in-flight connections.
func (s *SubmitServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.close()
}

// Hello is the protocol handshake.
func (s *SubmitServer) Hello(args HelloArgs, reply *HelloReply) error {
	if err := CheckVersion(args.Version); err != nil {
		return err
	}
	*reply = HelloReply{Version: ProtocolVersion}
	return nil
}

// Submit handles one streamed submission.
func (s *SubmitServer) Submit(args SubmitArgs, reply *SubmitReply) error {
	rep, err := s.svc.Submit(args)
	*reply = rep
	return err
}

// Withdraw handles one withdrawal.
func (s *SubmitServer) Withdraw(args WithdrawArgs, reply *WithdrawReply) error {
	rep, err := s.svc.Withdraw(args)
	*reply = rep
	return err
}

// Poll handles one state poll.
func (s *SubmitServer) Poll(args PollArgs, reply *PollReply) error {
	rep, err := s.svc.Poll(args)
	*reply = rep
	return err
}

// SubmitClient is a tenant's handle to the submission plane.
type SubmitClient struct {
	c   *gorpc.Client
	pol CallPolicy
}

// DialSubmit connects to a coordinator's submission endpoint with the
// environment's call policy and performs the version handshake.
func DialSubmit(addr string) (*SubmitClient, error) {
	return DialSubmitWith(addr, CallPolicyFromEnv())
}

// DialSubmitWith is DialSubmit under an explicit call policy.
func DialSubmitWith(addr string, pol CallPolicy) (*SubmitClient, error) {
	c, err := gorpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial submit %s: %w", addr, err)
	}
	sc := &SubmitClient{c: c, pol: pol}
	var hello HelloReply
	if err := sc.call("Hello", HelloArgs{Version: ProtocolVersion, Role: "client"}, &hello); err != nil {
		c.Close()
		return nil, err
	}
	return sc, nil
}

// call is one deadline-bounded request with transparent retries on transient
// failures — every submission-plane method is idempotent, so at-least-once
// is safe by construction.
func (c *SubmitClient) call(method string, args, reply any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.callOnce(method, args, reply)
		if err == nil || !IsTransient(CodeOf(err)) || attempt >= c.pol.Retries {
			return err
		}
		if c.pol.Backoff > 0 {
			time.Sleep(c.pol.Backoff << attempt)
		}
	}
}

func (c *SubmitClient) callOnce(method string, args, reply any) error {
	var err error
	if c.pol.Timeout > 0 {
		done := c.c.Go(submitServiceName+"."+method, args, reply, make(chan *gorpc.Call, 1))
		timer := time.NewTimer(c.pol.Timeout)
		select {
		case call := <-done.Done:
			timer.Stop()
			err = call.Error
		case <-timer.C:
			return Errorf(CodeTimeout, "%s: no reply within %v", method, c.pol.Timeout)
		}
	} else {
		err = c.c.Call(submitServiceName+"."+method, args, reply)
	}
	if err == nil {
		return nil
	}
	if _, isServer := err.(gorpc.ServerError); isServer {
		return ParseError(err)
	}
	return Errorf(CodeUnavailable, "%s: %v", method, err)
}

// Submit streams one job submission.
func (c *SubmitClient) Submit(args SubmitArgs) (SubmitReply, error) {
	var reply SubmitReply
	err := c.call("Submit", args, &reply)
	return reply, err
}

// Withdraw withdraws a submission by key.
func (c *SubmitClient) Withdraw(args WithdrawArgs) (WithdrawReply, error) {
	var reply WithdrawReply
	err := c.call("Withdraw", args, &reply)
	return reply, err
}

// Poll reports a submission's state (and refreshes the tenant's liveness
// clock server-side).
func (c *SubmitClient) Poll(args PollArgs) (PollReply, error) {
	var reply PollReply
	err := c.call("Poll", args, &reply)
	return reply, err
}

// Close releases the connection.
func (c *SubmitClient) Close() error { return c.c.Close() }
