package rpc

// This file is the coordinator's half of the telemetry plane: service-level
// counters (rounds, degradation, migration/recovery/rebalance work), the
// per-round trace IDs stamped onto every control-plane call, and the /statusz
// shard table. The Service itself is single-threaded by design, so its gauges
// are plain Gauges written from the round loop — never GaugeFuncs, which
// would read the mirror from the scrape goroutine without a lock. The one
// concurrent-safe read surface is the statusz snapshot, rebuilt at each round
// seal under its own mutex.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gavel/internal/obs"
)

// serviceObs bundles the Service's instruments and trace state. All pointer
// fields stay nil when observability is off, so every call site can record
// unconditionally through the obs package's nil no-ops.
type serviceObs struct {
	plane *obs.Plane
	tr    *obs.Tracer

	rounds     *obs.Counter // gavel_rounds_total
	degraded   *obs.Counter // gavel_degraded_rounds_total
	migrations *obs.Counter // gavel_migrations_total
	recoveries *obs.Counter // gavel_recoveries_total
	rebalances *obs.Counter // gavel_rebalances_total
	shardsLive *obs.Gauge   // gavel_shards_live
	jobsPlaced *obs.Gauge   // gavel_jobs_placed

	// statusz is the round-sealed shard-table snapshot; the mutex makes
	// StatusText safe to call from the scrape goroutine while the round loop
	// rewrites it.
	muStatus sync.RWMutex
	statusz  string
}

// setObs registers the coordinator instruments and threads the plane into the
// journal and the ingress. Called once from NewService; a nil plane leaves
// every instrument nil (the obs-off fast path).
func (s *Service) setObs(p *obs.Plane) {
	if p == nil {
		return
	}
	reg := p.Registry()
	s.tel.plane = p
	s.tel.tr = p.Tracer()
	s.tel.rounds = reg.Counter("gavel_rounds_total", "Rounds sealed by EndRound.")
	s.tel.degraded = reg.Counter("gavel_degraded_rounds_total", "Rounds that proceeded with at least one shard degraded.")
	s.tel.migrations = reg.Counter("gavel_migrations_total", "Jobs moved between shards by rebalancing.")
	s.tel.recoveries = reg.Counter("gavel_recoveries_total", "Jobs re-routed off dead shards.")
	s.tel.rebalances = reg.Counter("gavel_rebalances_total", "Rebalance passes that moved at least one job.")
	s.tel.shardsLive = reg.Gauge("gavel_shards_live", "Shard daemons currently marked live.")
	s.tel.jobsPlaced = reg.Gauge("gavel_jobs_placed", "Jobs currently placed across all shards.")
	// A resumed coordinator seeds its counters from the replayed journal so
	// the series agree with the Round()/Migrations()/... getters.
	s.tel.rounds.Add(int(s.round))
	s.tel.degraded.Add(s.degradedRounds)
	s.tel.migrations.Add(s.migrations)
	s.tel.recoveries.Add(s.recoveries)
	s.tel.rebalances.Add(s.rebalances)
	s.j.setObs(p)
	s.ing.setObs(p)
}

// syncObs refreshes the coordinator gauges and the statusz snapshot from the
// mirror. Called from the single-threaded round loop (EndRound, markDown) and
// once at the end of NewService; cheap no-op when observability is off.
func (s *Service) syncObs() {
	if s.tel.plane == nil {
		return
	}
	live := 0
	for _, m := range s.shards {
		if !m.down {
			live++
		}
	}
	s.tel.shardsLive.Set(float64(live))
	s.tel.jobsPlaced.Set(float64(len(s.shardOf)))

	var b strings.Builder
	fmt.Fprintf(&b, "round %d  shards %d/%d live  jobs %d  migrations %d  recoveries %d  rebalances %d  degraded rounds %d\n",
		s.round, live, len(s.shards), len(s.shardOf), s.migrations, s.recoveries, s.rebalances, s.degradedRounds)
	fmt.Fprintf(&b, "%-6s %-6s %-5s %-6s %-6s %-11s %-10s\n",
		"shard", "state", "jobs", "load", "dirty", "staleRounds", "staleTotal")
	for _, m := range s.shards {
		state := "live"
		if m.down {
			state = "down"
		}
		fmt.Fprintf(&b, "%-6d %-6s %-5d %-6d %-6v %-11d %-10d\n",
			m.index, state, len(m.jobs), m.load, m.dirty, m.staleRounds, m.staleAllocs)
	}
	s.tel.muStatus.Lock()
	s.tel.statusz = b.String()
	s.tel.muStatus.Unlock()
}

// StatusText returns the last round seal's shard-table snapshot for /statusz.
// Safe for concurrent use (it reads the snapshot, never the mirror).
func (s *Service) StatusText() string {
	s.tel.muStatus.RLock()
	defer s.tel.muStatus.RUnlock()
	if s.tel.statusz == "" {
		return "no round sealed yet\n"
	}
	return s.tel.statusz
}

// TenantStatusText renders the per-tenant admission table for /statusz. Safe
// for concurrent use (TenantStats locks the ingress). Empty without a
// submission plane.
func (s *Service) TenantStatusText() string {
	stats := s.TenantStats()
	if len(stats) == 0 {
		return "no tenants\n"
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Tenant < stats[j].Tenant })
	var b strings.Builder
	fmt.Fprintf(&b, "queue depth %d\n", s.QueueDepth())
	fmt.Fprintf(&b, "%-16s %-9s %-8s %-7s %-5s %-9s %-5s %-6s %-8s %-11s %-6s\n",
		"tenant", "submitted", "admitted", "refused", "shed", "withdrawn", "done", "queued", "resident", "quarantined", "clamp")
	for _, t := range stats {
		fmt.Fprintf(&b, "%-16s %-9d %-8d %-7d %-5d %-9d %-5d %-6d %-8d %-11v %-6.2f\n",
			t.Tenant, t.Submitted, t.Admitted, t.Refused, t.Shed, t.Withdrawn, t.Done,
			t.Queued, t.Resident, t.Quarantined, t.ClampRatio)
	}
	return b.String()
}
