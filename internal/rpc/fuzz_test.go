package rpc

// Chaos-seeded fuzzing of the protocol's parsing surfaces: the typed-error
// wire format (which must survive net/rpc's error-string flattening) and the
// version handshake. `go test` runs the seed corpus as unit tests; `go test
// -fuzz` explores further.

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseError: ParseError must be total — any string round-trips to some
// error without panicking — and wire-formatted errors must round-trip their
// code and message exactly.
func FuzzParseError(f *testing.F) {
	f.Add("gavelrpc[3]: shard 1 is down")
	f.Add("gavelrpc[999]: unknown code")
	f.Add("gavelrpc[-1]: negative")
	f.Add("gavelrpc[]: empty")
	f.Add("gavelrpc[3x]: trailing junk")
	f.Add("plain error text")
	f.Add("")
	f.Add("gavelrpc[")
	f.Add("gavelrpc[18446744073709551616]: overflow")
	f.Fuzz(func(t *testing.T, s string) {
		err := ParseError(errors.New(s))
		if err == nil {
			t.Fatal("ParseError returned nil for a non-nil error")
		}
		_ = CodeOf(err) // must not panic either
	})
}

// FuzzErrorRoundTrip: every code crossing the wire as a flattened string
// must parse back to the same code and message.
func FuzzErrorRoundTrip(f *testing.F) {
	f.Add(int64(3), "shard 1 is down")
	f.Add(int64(0), "")
	f.Add(int64(12), "msg with ]: brackets [7] inside")
	f.Fuzz(func(t *testing.T, code int64, msg string) {
		if strings.ContainsAny(msg, "\x00") {
			return
		}
		orig := Errorf(ErrorCode(code), "%s", msg)
		// net/rpc flattens server-side errors to their string.
		flattened := errors.New(orig.Error())
		parsed := ParseError(flattened)
		if CodeOf(parsed) != ErrorCode(code) {
			t.Fatalf("code %d flattened to %q reparsed as %d", code, orig.Error(), CodeOf(parsed))
		}
	})
}

// FuzzCheckVersion: the handshake must reject mismatches with a typed error
// and never panic, whatever version a peer claims.
func FuzzCheckVersion(f *testing.F) {
	f.Add(0)
	f.Add(ProtocolVersion)
	f.Add(-1)
	f.Add(1 << 40)
	f.Fuzz(func(t *testing.T, v int) {
		err := CheckVersion(v)
		if v == ProtocolVersion {
			if err != nil {
				t.Fatalf("matching version rejected: %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("version %d accepted, want mismatch error", v)
		}
		if CodeOf(err) != CodeVersionMismatch {
			t.Fatalf("version %d rejected with code %v, want CodeVersionMismatch", v, CodeOf(err))
		}
	})
}
