package rpc

// Chaos-seeded fuzzing of the protocol's parsing surfaces: the typed-error
// wire format (which must survive net/rpc's error-string flattening) and the
// version handshake. `go test` runs the seed corpus as unit tests; `go test
// -fuzz` explores further.

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseError: ParseError must be total — any string round-trips to some
// error without panicking — and wire-formatted errors must round-trip their
// code and message exactly.
func FuzzParseError(f *testing.F) {
	f.Add("gavelrpc[3]: shard 1 is down")
	f.Add("gavelrpc[999]: unknown code")
	f.Add("gavelrpc[-1]: negative")
	f.Add("gavelrpc[]: empty")
	f.Add("gavelrpc[3x]: trailing junk")
	f.Add("plain error text")
	f.Add("")
	f.Add("gavelrpc[")
	f.Add("gavelrpc[18446744073709551616]: overflow")
	f.Fuzz(func(t *testing.T, s string) {
		err := ParseError(errors.New(s))
		if err == nil {
			t.Fatal("ParseError returned nil for a non-nil error")
		}
		_ = CodeOf(err) // must not panic either
	})
}

// FuzzErrorRoundTrip: every code crossing the wire as a flattened string
// must parse back to the same code and message.
func FuzzErrorRoundTrip(f *testing.F) {
	f.Add(int64(3), "shard 1 is down")
	f.Add(int64(0), "")
	f.Add(int64(12), "msg with ]: brackets [7] inside")
	f.Fuzz(func(t *testing.T, code int64, msg string) {
		if strings.ContainsAny(msg, "\x00") {
			return
		}
		orig := Errorf(ErrorCode(code), "%s", msg)
		// net/rpc flattens server-side errors to their string.
		flattened := errors.New(orig.Error())
		parsed := ParseError(flattened)
		if CodeOf(parsed) != ErrorCode(code) {
			t.Fatalf("code %d flattened to %q reparsed as %d", code, orig.Error(), CodeOf(parsed))
		}
	})
}

// FuzzCheckVersion: the handshake must reject mismatches with a typed error
// and never panic, whatever version a peer claims.
func FuzzCheckVersion(f *testing.F) {
	f.Add(0)
	f.Add(ProtocolVersion)
	f.Add(-1)
	f.Add(1 << 40)
	f.Fuzz(func(t *testing.T, v int) {
		err := CheckVersion(v)
		if v == ProtocolVersion {
			if err != nil {
				t.Fatalf("matching version rejected: %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("version %d accepted, want mismatch error", v)
		}
		if CodeOf(err) != CodeVersionMismatch {
			t.Fatalf("version %d rejected with code %v, want CodeVersionMismatch", v, CodeOf(err))
		}
	})
}

// FuzzParseSubmitSpec: the submission spec parser must be total — any input
// either parses or fails with a typed CodeBadRequest, never panics — and
// every successful parse must round-trip exactly through SpecString.
func FuzzParseSubmitSpec(f *testing.F) {
	f.Add("tenant=acme,key=job-7,name=resnet50,steps=5000,sf=2,slo=1,tput=120;80;30")
	f.Add("tenant=a,key=k")
	f.Add("tenant=a,key=k,tput=0;0;0")
	f.Add("tenant=a,key=k,steps=1e308")
	f.Add("tenant=,key=")
	f.Add("tenant=a,key=k,steps=NaN")
	f.Add("tenant=a,key=k,tput=1;;2")
	f.Add("steps=5,tenant=a,key=k")
	f.Add(",,,")
	f.Add("tenant=a=b,key=k")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseSubmitSpec(s)
		if err != nil {
			if CodeOf(err) != CodeBadRequest {
				t.Fatalf("parse %q failed with code %v, want CodeBadRequest", s, CodeOf(err))
			}
			return
		}
		b, err := ParseSubmitSpec(a.SpecString())
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", a.SpecString(), s, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip of %q changed:\n first %+v\nsecond %+v", s, a, b)
		}
	})
}
