package rpc

// This file is the client-side fault policy of the control plane: per-call
// deadlines (a hung daemon must not block the round fan-out forever) and
// retry with jittered exponential backoff for transient failures. Both are
// typed configuration in the lp.Options style — resolve a CallPolicy once at
// startup (CallPolicyFromEnv, then flags) and thread it through DialShardWith
// or WithRetry — instead of ad-hoc getenv reads at call sites.
//
// Retries are safe because the shard surface is idempotent at-least-once:
// Install/Remove no-op on repeats, Allocate/AssignRound dedup by round
// number, Observe overwrites, and the read-only calls are free. The one
// exception is Extract (it removes state and returns it), which is never
// retried — the Service's migrate path has its own reinstall fallback.

import (
	"math/rand"
	"os"
	"strconv"
	"time"

	"gavel/internal/obs"
)

// DefaultCallTimeout bounds one control-plane call when GAVEL_RPC_TIMEOUT is
// unset. Rounds are seconds-to-minutes; two minutes distinguishes "slow
// solve" from "hung daemon" with a wide margin.
const DefaultCallTimeout = 2 * time.Minute

// CallPolicy bundles the per-call fault knobs of a shard client.
type CallPolicy struct {
	// Timeout is the per-call deadline (0 disables; net transport only — the
	// in-memory client runs the handler inline and cannot be interrupted).
	Timeout time.Duration
	// Retries is how many times a transient failure (CodeTimeout,
	// CodeUnavailable) is re-sent before the error surfaces to the caller.
	Retries int
	// Backoff is the first retry's sleep; each further retry doubles it up to
	// MaxBackoff, jittered to [50%, 100%] to avoid synchronized re-sends.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JitterSeed makes the backoff jitter reproducible (0 seeds from the
	// policy's first use deterministically — the zero value is still
	// deterministic, which the chaos tests rely on).
	JitterSeed int64
	// Obs, when non-nil, counts every call outcome
	// (gavel_rpc_calls_total{method,outcome}) and every re-send
	// (gavel_rpc_retries_total{method}), and records one "rpc.retry" span
	// per backoff sleep. Metrics never affect the retry schedule or the
	// jitter stream, so enabling them cannot perturb determinism.
	Obs *obs.Plane
}

// IsZero reports whether the policy disables both deadlines and retries.
func (p CallPolicy) IsZero() bool {
	return p.Timeout == 0 && p.Retries == 0
}

// CallPolicyFromEnv resolves the GAVEL_RPC_TIMEOUT / GAVEL_RPC_RETRIES /
// GAVEL_RPC_BACKOFF environment knobs. Unset values take the defaults
// (2m deadline, 2 retries, 25ms base backoff); GAVEL_RPC_TIMEOUT=0 disables
// the deadline, GAVEL_RPC_RETRIES=0 disables retries.
func CallPolicyFromEnv() CallPolicy {
	p := CallPolicy{
		Timeout:    DefaultCallTimeout,
		Retries:    2,
		Backoff:    25 * time.Millisecond,
		MaxBackoff: time.Second,
	}
	if v := os.Getenv("GAVEL_RPC_TIMEOUT"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d >= 0 {
			p.Timeout = d
		} else if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			p.Timeout = time.Duration(n) * time.Second
		}
	}
	if v := os.Getenv("GAVEL_RPC_RETRIES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			p.Retries = n
		}
	}
	if v := os.Getenv("GAVEL_RPC_BACKOFF"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			p.Backoff = d
		}
	}
	return p
}

// retryClient wraps any ShardClient with the CallPolicy's retry loop. The
// deadline half of the policy lives in the transport (netShardClient), below
// this wrapper, so a retried call gets a fresh deadline each attempt.
type retryClient struct {
	inner ShardClient
	pol   CallPolicy
	rng   *rand.Rand
	sleep func(time.Duration) // injectable for tests

	tr      *obs.Tracer
	calls   *obs.CounterVec // method, outcome
	retries *obs.CounterVec // method
}

// WithRetry layers the policy's retry loop over a shard client. A zero
// policy returns the client unchanged. Retries re-send on transient codes
// only (IsTransient); every other error — including CodeShardDown — surfaces
// immediately. Extract and Close are never retried.
func WithRetry(c ShardClient, pol CallPolicy) ShardClient {
	if pol.Retries <= 0 && pol.Obs == nil {
		return c
	}
	if pol.Backoff <= 0 {
		pol.Backoff = 25 * time.Millisecond
	}
	if pol.MaxBackoff < pol.Backoff {
		pol.MaxBackoff = pol.Backoff
	}
	rc := &retryClient{
		inner: c,
		pol:   pol,
		rng:   rand.New(rand.NewSource(pol.JitterSeed ^ 0x67617665)), // "gave"
		sleep: time.Sleep,
	}
	if pol.Obs != nil {
		reg := pol.Obs.Registry()
		rc.tr = pol.Obs.Tracer()
		rc.calls = reg.CounterVec("gavel_rpc_calls_total", "Control-plane calls by method and outcome.", "method", "outcome")
		rc.retries = reg.CounterVec("gavel_rpc_retries_total", "Transient-failure re-sends by method.", "method")
		// Pre-register the retry children CI greps for, so the series
		// exists at zero before the first fault.
		for _, m := range []string{"Allocate", "AssignRound", "Install", "Remove", "Observe", "ObserveJob", "Snapshot", "Status", "Ping"} {
			rc.retries.With(m)
		}
	}
	return rc
}

// retry runs op up to 1+Retries times, backing off with jitter between
// transient failures.
func (c *retryClient) retry(method string, op func() error) error {
	backoff := c.pol.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			c.calls.With(method, "ok").Inc()
			return nil
		}
		if !IsTransient(CodeOf(err)) || attempt >= c.pol.Retries {
			c.calls.With(method, "error").Inc()
			return err
		}
		c.calls.With(method, "transient").Inc()
		c.retries.With(method).Inc()
		d := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		sp := c.tr.Begin("", "rpc.retry").Attr("method", method).
			AttrInt("attempt", int64(attempt+1)).AttrInt("backoff_ms", d.Milliseconds())
		c.sleep(d)
		sp.End(err)
		if backoff *= 2; backoff > c.pol.MaxBackoff {
			backoff = c.pol.MaxBackoff
		}
	}
}

func (c *retryClient) Hello(args HelloArgs) (HelloReply, error) {
	var reply HelloReply
	err := c.retry("Hello", func() error {
		var e error
		reply, e = c.inner.Hello(args)
		return e
	})
	return reply, err
}

func (c *retryClient) Configure(cfg ShardConfig) error {
	return c.retry("Configure", func() error { return c.inner.Configure(cfg) })
}

func (c *retryClient) Install(args InstallArgs) error {
	return c.retry("Install", func() error { return c.inner.Install(args) })
}

func (c *retryClient) Remove(args RemoveArgs) error {
	return c.retry("Remove", func() error { return c.inner.Remove(args) })
}

// Extract is deliberately not retried: it is the one non-idempotent call on
// the surface (a lost reply leaves the job extracted daemon-side), and the
// Service's migrate path owns the recovery of that ambiguity.
func (c *retryClient) Extract(args ExtractArgs) (ExtractReply, error) {
	return c.inner.Extract(args)
}

func (c *retryClient) Allocate(args AllocateArgs) (AllocateReply, error) {
	var reply AllocateReply
	err := c.retry("Allocate", func() error {
		var e error
		reply, e = c.inner.Allocate(args)
		return e
	})
	return reply, err
}

func (c *retryClient) AssignRound(args AssignRoundArgs) (AssignRoundReply, error) {
	var reply AssignRoundReply
	err := c.retry("AssignRound", func() error {
		var e error
		reply, e = c.inner.AssignRound(args)
		return e
	})
	return reply, err
}

func (c *retryClient) Observe(args ObserveArgs) error {
	return c.retry("Observe", func() error { return c.inner.Observe(args) })
}

func (c *retryClient) ObserveJob(args ObserveJobArgs) error {
	return c.retry("ObserveJob", func() error { return c.inner.ObserveJob(args) })
}

func (c *retryClient) Snapshot() (SnapshotReply, error) {
	var reply SnapshotReply
	err := c.retry("Snapshot", func() error {
		var e error
		reply, e = c.inner.Snapshot()
		return e
	})
	return reply, err
}

func (c *retryClient) Status() (ShardStatus, error) {
	var reply ShardStatus
	err := c.retry("Status", func() error {
		var e error
		reply, e = c.inner.Status()
		return e
	})
	return reply, err
}

func (c *retryClient) Ping() error {
	return c.retry("Ping", func() error { return c.inner.Ping() })
}

func (c *retryClient) Close() error { return c.inner.Close() }
