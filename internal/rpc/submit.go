package rpc

// This file is the wire vocabulary and configuration of the client
// submission plane (protocol v3): the messages clients use to stream jobs
// into a running coordinator — Submit, Withdraw, Poll — plus the admission
// knobs that bound what a tenant may do to the cluster. The Service-side
// engine lives in ingress.go; the net/rpc surface in submitserver.go.
//
// Submissions are identified by a client-chosen (tenant, key) pair, never by
// job ID: the coordinator assigns job IDs, and a retried Submit with a key it
// has already journaled dedupes instead of double-admitting. That is what
// makes the plane safe under at-least-once delivery — a client that times out
// and re-sends cannot create a second job.

import (
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// SubmissionState is the lifecycle of one submission through the ingress.
type SubmissionState int

const (
	// SubmissionUnknown: no submission with that (tenant, key) exists.
	SubmissionUnknown SubmissionState = iota
	// SubmissionQueued: accepted into the tenant's ingress queue, not yet
	// routed to a shard.
	SubmissionQueued
	// SubmissionAdmitted: installed on a shard and being scheduled.
	SubmissionAdmitted
	// SubmissionDone: the job completed and left the cluster.
	SubmissionDone
	// SubmissionWithdrawn: removed by the client (Withdraw) or by the
	// abandoned-client TTL before completing.
	SubmissionWithdrawn
	// SubmissionRejected: shed by the overload ladder; the job never ran.
	SubmissionRejected
)

func (s SubmissionState) String() string {
	switch s {
	case SubmissionQueued:
		return "queued"
	case SubmissionAdmitted:
		return "admitted"
	case SubmissionDone:
		return "done"
	case SubmissionWithdrawn:
		return "withdrawn"
	case SubmissionRejected:
		return "rejected"
	}
	return "unknown"
}

// SubmitArgs streams one job into the coordinator. Tput is the tenant's
// *declared* isolated throughput row over the cluster's accelerator types —
// a claim, validated for shape at the edge and later cross-checked against
// measured throughput by the quarantine validator.
type SubmitArgs struct {
	// Tenant names the submitting principal; quotas, queues, and trust are
	// all per tenant.
	Tenant string
	// Key is the client-chosen idempotency key, unique within the tenant.
	// Re-submitting an existing key returns the submission's current state
	// instead of creating a duplicate.
	Key string
	// Name labels the job (model name) for the lease plane and logs.
	Name string
	// TotalSteps is the training length; the lease plane retires the job
	// when measured progress reaches it.
	TotalSteps float64
	// ScaleFactor is the requested worker count (min 1).
	ScaleFactor int
	// Tput is the declared steps/sec per accelerator type (len == cluster
	// type count, finite, non-negative).
	Tput []float64
	// SLOClass orders submissions for the shedding ladder: under sustained
	// overload, class 0 is shed first, higher classes last.
	SLOClass int
}

// SubmitReply acknowledges an accepted (or deduped) submission.
type SubmitReply struct {
	// JobID is the coordinator-assigned job identity.
	JobID int
	State SubmissionState
}

// WithdrawArgs removes a submission by its idempotency key.
type WithdrawArgs struct {
	Tenant string
	Key    string
}

// WithdrawReply reports the submission's state after the withdrawal request
// (queued submissions withdraw immediately; admitted ones on the next round).
type WithdrawReply struct {
	State SubmissionState
}

// PollArgs asks for a submission's state. Polling is also the client's
// liveness signal: a tenant that stops polling past the abandoned-client TTL
// has its submissions withdrawn.
type PollArgs struct {
	Tenant string
	Key    string
}

// PollReply is the submission's current state.
type PollReply struct {
	JobID int
	State SubmissionState
	// Shard is the placement for admitted submissions (-1 otherwise).
	Shard int
	// Round is the coordinator's last sealed round, the clock retry hints
	// are denominated in.
	Round int64
}

// AdmissionConfig bounds the submission plane per tenant. The zero value
// resolves to the defaults below (withDefaults); AdmissionConfigFromEnv reads
// the GAVEL_SUBMIT_* knobs.
type AdmissionConfig struct {
	// MaxQueuePerTenant bounds a tenant's ingress queue; a Submit beyond it
	// is refused with CodeOverload and a retry-after hint (default 64).
	MaxQueuePerTenant int
	// MaxResidentPerTenant caps a tenant's admitted-and-running jobs;
	// excess submissions wait in the queue (0 = unlimited).
	MaxResidentPerTenant int
	// RatePerRound is the tenant's admission token-bucket refill per sealed
	// round; Burst is the bucket size (defaults: 0 = unrationed, bucket
	// starts full at Burst). Rounds, not wall clock, so admission is
	// deterministic and journal-replayable.
	RatePerRound float64
	Burst        float64
	// ShedQueueDepth is the global queued-submission high-water mark; a
	// queue above it after a drain counts the round as overloaded (default
	// 4 x MaxQueuePerTenant).
	ShedQueueDepth int
	// ShedAfterRounds is how many consecutive overloaded rounds are
	// tolerated before the ladder escalates from deferring to shedding —
	// rejecting queued submissions, lowest SLO class first (default 3).
	ShedAfterRounds int
	// QuarantineDivergence is the declared/measured throughput ratio above
	// which a tenant's round counts as divergent (default 2.0).
	QuarantineDivergence float64
	// QuarantineAfterRounds is how many consecutive divergent reviews a
	// tenant survives before being quarantined: its shard rows are clamped
	// to measured values and stay clamped (default 3).
	QuarantineAfterRounds int
	// MeasuredAlpha is the EWMA weight of the newest measured-throughput
	// sample (default 0.5).
	MeasuredAlpha float64
	// AbandonAfterRounds withdraws a tenant's submissions when it has not
	// submitted, polled, or withdrawn for this many rounds — the
	// crashed-client TTL, in rounds like the worker lease TTL is in round
	// lengths (0 = never).
	AbandonAfterRounds int
	// JobIDBase is the first coordinator-assigned job ID (default 1000000,
	// clear of driver-assigned synthetic batch IDs).
	JobIDBase int
}

// Admission defaults; see the field docs above.
const (
	defaultMaxQueuePerTenant = 64
	defaultShedAfterRounds   = 3
	defaultQuarantineDiv     = 2.0
	defaultQuarantineAfter   = 3
	defaultMeasuredAlpha     = 0.5
	defaultJobIDBase         = 1000000
)

// withDefaults resolves zero fields to the documented defaults.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = defaultMaxQueuePerTenant
	}
	if c.Burst <= 0 {
		if c.RatePerRound > 0 {
			c.Burst = math.Max(2*c.RatePerRound, 1)
		} else {
			c.Burst = 1
		}
	}
	if c.ShedQueueDepth <= 0 {
		c.ShedQueueDepth = 4 * c.MaxQueuePerTenant
	}
	if c.ShedAfterRounds <= 0 {
		c.ShedAfterRounds = defaultShedAfterRounds
	}
	if c.QuarantineDivergence <= 0 {
		c.QuarantineDivergence = defaultQuarantineDiv
	}
	if c.QuarantineAfterRounds <= 0 {
		c.QuarantineAfterRounds = defaultQuarantineAfter
	}
	if c.MeasuredAlpha <= 0 || c.MeasuredAlpha > 1 {
		c.MeasuredAlpha = defaultMeasuredAlpha
	}
	if c.JobIDBase <= 0 {
		c.JobIDBase = defaultJobIDBase
	}
	return c
}

// AdmissionConfigFromEnv resolves the GAVEL_SUBMIT_* environment knobs over
// the defaults: QUEUE (per-tenant queue bound), RESIDENT (per-tenant resident
// cap), RATE / BURST (admission token bucket per round), SHED_DEPTH /
// SHED_AFTER (overload ladder), QUARANTINE_DIV / QUARANTINE_AFTER (trust
// validator), ALPHA (measured EWMA), ABANDON_AFTER (crashed-client TTL).
func AdmissionConfigFromEnv() AdmissionConfig {
	var c AdmissionConfig
	geti := func(key string, dst *int) {
		if v := os.Getenv(key); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				*dst = n
			}
		}
	}
	getf := func(key string, dst *float64) {
		if v := os.Getenv(key); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
				*dst = f
			}
		}
	}
	geti("GAVEL_SUBMIT_QUEUE", &c.MaxQueuePerTenant)
	geti("GAVEL_SUBMIT_RESIDENT", &c.MaxResidentPerTenant)
	getf("GAVEL_SUBMIT_RATE", &c.RatePerRound)
	getf("GAVEL_SUBMIT_BURST", &c.Burst)
	geti("GAVEL_SUBMIT_SHED_DEPTH", &c.ShedQueueDepth)
	geti("GAVEL_SUBMIT_SHED_AFTER", &c.ShedAfterRounds)
	getf("GAVEL_SUBMIT_QUARANTINE_DIV", &c.QuarantineDivergence)
	geti("GAVEL_SUBMIT_QUARANTINE_AFTER", &c.QuarantineAfterRounds)
	getf("GAVEL_SUBMIT_ALPHA", &c.MeasuredAlpha)
	geti("GAVEL_SUBMIT_ABANDON_AFTER", &c.AbandonAfterRounds)
	return c.withDefaults()
}

// ValidateTput rejects a malformed declared-throughput vector at the edge:
// wrong length, NaN, infinite, or negative entries would otherwise corrupt
// the coordinator mirror and every LP downstream.
func ValidateTput(numTypes int, tput []float64) error {
	if len(tput) != numTypes {
		return Errorf(CodeBadRequest,
			"throughput vector has %d entries, cluster has %d accelerator types", len(tput), numTypes)
	}
	for j, v := range tput {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return Errorf(CodeBadRequest, "throughput[%d] = %v is not a finite non-negative rate", j, v)
		}
	}
	return nil
}

// retryAfterRe recovers the rounds hint from an overload error's message.
var retryAfterRe = regexp.MustCompile(`retry-after=(\d+)`)

// Overloadf builds a CodeOverload error carrying a machine-readable
// retry-after hint (in rounds) that survives net/rpc's string flattening.
func Overloadf(retryAfter int, format string, args ...any) *Error {
	if retryAfter < 1 {
		retryAfter = 1
	}
	return Errorf(CodeOverload, "%s; retry-after=%d", fmt.Sprintf(format, args...), retryAfter)
}

// RetryAfter extracts the rounds hint from an overload error (0 when absent
// or the error is not an overload).
func RetryAfter(err error) int {
	e := ParseError(err)
	if e == nil || e.Code != CodeOverload {
		return 0
	}
	if m := retryAfterRe.FindStringSubmatch(e.Msg); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil {
			return n
		}
	}
	return 0
}

// ParseSubmitSpec parses the flat "key=value,..." submission form the
// gavel-submit client and tests speak, e.g.
//
//	tenant=acme,key=job-7,name=resnet50,steps=5000,sf=2,slo=1,tput=120;80;30
//
// Tput entries are semicolon-separated and must be finite and non-negative;
// unknown keys are errors. The inverse is SpecString, and
// FuzzParseSubmitSpec holds the round trip.
func ParseSubmitSpec(spec string) (SubmitArgs, error) {
	var a SubmitArgs
	a.ScaleFactor = 1
	if strings.TrimSpace(spec) == "" {
		return a, Errorf(CodeBadRequest, "empty submit spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return a, Errorf(CodeBadRequest, "bad submit spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "tenant":
			a.Tenant = v
		case "key":
			a.Key = v
		case "name":
			a.Name = v
		case "steps":
			a.TotalSteps, err = strconv.ParseFloat(v, 64)
			if err == nil && (math.IsNaN(a.TotalSteps) || math.IsInf(a.TotalSteps, 0) || a.TotalSteps < 0) {
				err = fmt.Errorf("steps must be finite and non-negative")
			}
		case "sf":
			a.ScaleFactor, err = strconv.Atoi(v)
			if err == nil && a.ScaleFactor < 1 {
				err = fmt.Errorf("sf must be >= 1")
			}
		case "slo":
			a.SLOClass, err = strconv.Atoi(v)
			if err == nil && a.SLOClass < 0 {
				err = fmt.Errorf("slo must be >= 0")
			}
		case "tput":
			a.Tput = nil
			if v != "" {
				for _, f := range strings.Split(v, ";") {
					var x float64
					if x, err = strconv.ParseFloat(f, 64); err != nil {
						break
					}
					if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
						err = fmt.Errorf("tput entries must be finite and non-negative")
						break
					}
					a.Tput = append(a.Tput, x)
				}
			}
		default:
			return a, Errorf(CodeBadRequest, "unknown submit spec key %q", k)
		}
		if err != nil {
			return a, Errorf(CodeBadRequest, "bad value for %q: %v", k, err)
		}
	}
	if a.Tenant == "" || a.Key == "" {
		return a, Errorf(CodeBadRequest, "submit spec needs tenant= and key=")
	}
	if strings.ContainsAny(a.Tenant, ",=;") || strings.ContainsAny(a.Key, ",=;") {
		return a, Errorf(CodeBadRequest, "tenant and key must not contain ',', '=', or ';'")
	}
	if strings.ContainsAny(a.Name, ",=;") {
		return a, Errorf(CodeBadRequest, "name must not contain ',', '=', or ';'")
	}
	return a, nil
}

// SpecString renders the args back into ParseSubmitSpec's form.
func (a SubmitArgs) SpecString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenant=%s,key=%s", a.Tenant, a.Key)
	if a.Name != "" {
		fmt.Fprintf(&b, ",name=%s", a.Name)
	}
	if a.TotalSteps != 0 {
		fmt.Fprintf(&b, ",steps=%s", strconv.FormatFloat(a.TotalSteps, 'g', -1, 64))
	}
	if a.ScaleFactor != 1 {
		fmt.Fprintf(&b, ",sf=%d", a.ScaleFactor)
	}
	if a.SLOClass != 0 {
		fmt.Fprintf(&b, ",slo=%d", a.SLOClass)
	}
	if len(a.Tput) > 0 {
		b.WriteString(",tput=")
		for i, v := range a.Tput {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return b.String()
}
