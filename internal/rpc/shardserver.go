package rpc

import (
	"net"
	gorpc "net/rpc"
	"sync"

	"gavel/internal/cluster"
	"gavel/internal/policy"
)

// ShardServer is one shard daemon's engine: a cluster.Shard (solve context,
// throughput cache, round mechanism over its device slice) behind the
// coordinator <-> shard protocol. A daemon starts bare — NewShardServer,
// then Serve — and receives its identity (device slice, policy, LP options)
// from the coordinator's Configure push. Every exported method below is a
// net/rpc handler; LocalShardClient calls the same methods directly, so the
// in-memory transport exercises the identical code path minus the sockets.
//
// Calls are serialized by a mutex: the control plane is round-synchronous by
// design (one coordinator, one call in flight per shard per phase), so
// serialization costs nothing and keeps the shard's state transitions
// byte-deterministic.
type ShardServer struct {
	mu    sync.Mutex
	shard *cluster.Shard
	pol   policy.Policy
	cfg   ShardConfig

	// Round-keyed reply caches make Allocate and AssignRound idempotent
	// under at-least-once delivery: the protocol is round-synchronous, so
	// the round number is a natural request ID, and a retried or duplicated
	// call for the round already served returns the cached reply instead of
	// re-running the engine (which would skew solve and received-time
	// accounting).
	lastAllocRound  int64
	lastAlloc       AllocateReply
	lastAssignRound int64
	lastAssign      AssignRoundReply

	srv *tcpServer
}

// noRound is the reply caches' "nothing served yet" sentinel.
const noRound = int64(-1) << 62

// NewShardServer returns an unconfigured shard daemon engine.
func NewShardServer() *ShardServer { return &ShardServer{} }

// shardServiceName is the net/rpc service name of the shard surface.
const shardServiceName = "GavelShard"

// Serve starts the daemon's TCP listener on addr ("host:port"), returning
// the bound address (useful with ":0").
func (s *ShardServer) Serve(addr string) (string, error) {
	srv := gorpc.NewServer()
	if err := srv.RegisterName(shardServiceName, s); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.srv = newTCPServer(ln, srv)
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Close stops the listener and tears down every in-flight connection,
// joining their ServeConn goroutines.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.close()
}

// Hello is the protocol handshake.
func (s *ShardServer) Hello(args HelloArgs, reply *HelloReply) error {
	if err := CheckVersion(args.Version); err != nil {
		return err
	}
	*reply = HelloReply{Version: ProtocolVersion}
	return nil
}

// Ping is the liveness probe.
func (s *ShardServer) Ping(_ StatusArgs, _ *Ack) error { return nil }

// Configure installs the shard's identity. A repeat Configure with the same
// index is idempotent (a coordinator restart re-pushes config); changing the
// index of a live shard is an error.
func (s *ShardServer) Configure(cfg ShardConfig, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shard != nil {
		if cfg.Index != s.cfg.Index {
			return Errorf(CodeAlreadyConfigured,
				"shard %d cannot become shard %d", s.cfg.Index, cfg.Index)
		}
		return nil
	}
	if len(cfg.WorkerInts) == 0 {
		return Errorf(CodeBadRequest, "empty worker slice")
	}
	pol, err := PolicyFromSpec(cfg.Policy)
	if err != nil {
		return err
	}
	if !policy.ConcurrentSafe(pol) {
		return Errorf(CodeBadRequest, "policy %s is not safe for the sharded engine", pol.Name())
	}
	var ctx *policy.SolveContext
	if !cfg.ColdSolves {
		ctx = policy.NewSolveContextWith(cfg.LP)
	}
	s.shard = cluster.NewShard(cfg.Index, cfg.WorkerInts, cfg.PerServer, cfg.Prices, ctx)
	s.pol = pol
	s.cfg = cfg
	s.lastAllocRound, s.lastAssignRound = noRound, noRound
	return nil
}

// ready returns the shard under lock or a typed not-configured error.
func (s *ShardServer) ready() (*cluster.Shard, error) {
	if s.shard == nil {
		return nil, Errorf(CodeNotConfigured, "shard daemon has not been configured")
	}
	return s.shard, nil
}

// Install admits a job (arrival, migration target, or crash-recovery
// re-route). See InstallArgs for the seed-import gate. Installing an
// already-resident job is a no-op success: that is what makes Install safe
// to retry or duplicate when a reply is lost in transit.
func (s *ShardServer) Install(args InstallArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if sh.Has(args.JobID) {
		return nil
	}
	sh.Add(args.JobID, args.ScaleFactor, args.Tput)
	if args.Migrated {
		sh.MigratedIn++
	} else {
		sh.Admitted++
	}
	for _, p := range args.Pairs {
		sh.SetPairIfAbsent(p.A, p.B, p.Ta, p.Tb)
	}
	if len(args.Seeds) > 0 && !sh.Ctx.HasSeeds() {
		sh.Ctx.ImportSeeds(args.Seeds)
	}
	return nil
}

// Remove drops a completed job.
func (s *ShardServer) Remove(args RemoveArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	sh.Remove(args.JobID)
	return nil
}

// Extract removes a job for migration, returning its throughput row and the
// shard's warm seeds for the destination.
func (s *ShardServer) Extract(args ExtractArgs, reply *ExtractReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if !sh.Has(args.JobID) {
		return Errorf(CodeUnknownJob, "job %d is not resident on shard %d", args.JobID, s.cfg.Index)
	}
	reply.ScaleFactor = sh.Cache.ScaleFactor(args.JobID)
	reply.Tput = append([]float64(nil), sh.Cache.JobTput(args.JobID)...)
	reply.Seeds = sh.Ctx.ExportSeeds()
	sh.Remove(args.JobID)
	sh.MigratedOut++
	return nil
}

// Allocate recomputes the shard's allocation over its residents, using the
// coordinator-supplied per-job info, and returns the full allocation.
func (s *ShardServer) Allocate(args AllocateArgs, reply *AllocateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if args.Round == s.lastAllocRound {
		*reply = s.lastAlloc
		return nil
	}
	infos := make(map[int]policy.JobInfo, len(args.Infos))
	for _, ji := range args.Infos {
		infos[ji.ID] = ji
	}
	info := func(id int) policy.JobInfo { return infos[id] }
	if err := sh.Allocate(s.pol, s.cfg.PairGainThreshold, s.cfg.MaxPairsPerJob, info); err != nil {
		return Errorf(CodeInternal, "allocate: %v", err)
	}
	reply.IDs = append([]int(nil), sh.AllocIDs...)
	reply.Units = sh.Alloc.Units
	reply.X = sh.Alloc.X
	s.lastAllocRound, s.lastAlloc = args.Round, *reply
	return nil
}

// AssignRound runs one mechanism round over the current allocation.
func (s *ShardServer) AssignRound(args AssignRoundArgs, reply *AssignRoundReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if sh.Alloc == nil && sh.NumJobs() > 0 {
		return Errorf(CodeNoAllocation, "AssignRound before any Allocate on shard %d", s.cfg.Index)
	}
	if args.Round == s.lastAssignRound {
		*reply = s.lastAssign
		return nil
	}
	var skip func(id int) bool
	if len(args.SkipJobs) > 0 {
		set := make(map[int]bool, len(args.SkipJobs))
		for _, id := range args.SkipJobs {
			set[id] = true
		}
		skip = func(id int) bool { return set[id] }
	}
	assigns, err := sh.AssignRound(args.RoundSeconds, skip)
	if err != nil {
		return Errorf(CodeInternal, "assign round: %v", err)
	}
	reply.Assigns = assigns
	s.lastAssignRound, s.lastAssign = args.Round, *reply
	return nil
}

// Observe replays a round's measured pair throughputs into the cache.
func (s *ShardServer) Observe(args ObserveArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	for _, o := range args.Obs {
		sh.Observe(o.A, o.B, o.Type, o.Ta, o.Tb)
	}
	return nil
}

// ObserveJob overwrites one resident job's isolated throughput row (the
// coordinator's measured/clamped feedback). Departed jobs are a no-op so a
// push racing a removal stays harmless.
func (s *ShardServer) ObserveJob(args ObserveJobArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	sh.ObserveJob(args.JobID, args.Tput)
	return nil
}

// Snapshot returns the shard's recovery snapshot: warm seeds plus status.
func (s *ShardServer) Snapshot(_ SnapshotArgs, reply *SnapshotReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	reply.Seeds = sh.Ctx.ExportSeeds()
	reply.Status = s.statusLocked(sh)
	return nil
}

// Status returns the shard's accounting.
func (s *ShardServer) Status(_ StatusArgs, reply *ShardStatus) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	*reply = s.statusLocked(sh)
	return nil
}

func (s *ShardServer) statusLocked(sh *cluster.Shard) ShardStatus {
	st := ShardStatus{
		Index:       s.cfg.Index,
		Jobs:        sh.Jobs(),
		Admitted:    sh.Admitted,
		MigratedIn:  sh.MigratedIn,
		MigratedOut: sh.MigratedOut,
		PolicyCalls: sh.PolicyCalls,
		PolicyTime:  sh.PolicyTime,
	}
	if sh.Ctx != nil {
		st.Solve = sh.Ctx.Stats
	}
	return st
}

// tcpServer owns a listener and its per-connection goroutines so Close can
// actually stop everything (the seed's lease server leaked its ServeConn
// goroutines until process exit).
type tcpServer struct {
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func newTCPServer(ln net.Listener, srv *gorpc.Server) *tcpServer {
	t := &tcpServer{ln: ln, conns: map[net.Conn]struct{}{}}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.conns[conn] = struct{}{}
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				srv.ServeConn(conn)
				t.mu.Lock()
				delete(t.conns, conn)
				t.mu.Unlock()
				conn.Close()
			}()
		}
	}()
	return t
}

func (t *tcpServer) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
