package rpc

import (
	"fmt"
	"net"
	gorpc "net/rpc"
	"strings"
	"sync"

	"gavel/internal/cluster"
	"gavel/internal/obs"
	"gavel/internal/policy"
)

// ShardServer is one shard daemon's engine: a cluster.Shard (solve context,
// throughput cache, round mechanism over its device slice) behind the
// coordinator <-> shard protocol. A daemon starts bare — NewShardServer,
// then Serve — and receives its identity (device slice, policy, LP options)
// from the coordinator's Configure push. Every exported method below is a
// net/rpc handler; LocalShardClient calls the same methods directly, so the
// in-memory transport exercises the identical code path minus the sockets.
//
// Calls are serialized by a mutex: the control plane is round-synchronous by
// design (one coordinator, one call in flight per shard per phase), so
// serialization costs nothing and keeps the shard's state transitions
// byte-deterministic.
type ShardServer struct {
	mu    sync.Mutex
	shard *cluster.Shard
	pol   policy.Policy
	cfg   ShardConfig

	// Round-keyed reply caches make Allocate and AssignRound idempotent
	// under at-least-once delivery: the protocol is round-synchronous, so
	// the round number is a natural request ID, and a retried or duplicated
	// call for the round already served returns the cached reply instead of
	// re-running the engine (which would skew solve and received-time
	// accounting).
	lastAllocRound  int64
	lastAlloc       AllocateReply
	lastAssignRound int64
	lastAssign      AssignRoundReply

	// Telemetry (SetObs). Server-side spans are recorded only on work that
	// actually runs: a duplicated or retried Allocate/AssignRound hits the
	// reply cache above and records a cache-hit counter, never a second
	// span — that is what keeps span counts honest under at-least-once
	// delivery.
	tr     *obs.Tracer
	lpm    *obs.LPMetrics
	calls  *obs.CounterVec // gavel_shard_calls_total{method}
	cached *obs.CounterVec // gavel_shard_cached_replies_total{method}

	srv *tcpServer
}

// noRound is the reply caches' "nothing served yet" sentinel.
const noRound = int64(-1) << 62

// NewShardServer returns an unconfigured shard daemon engine.
func NewShardServer() *ShardServer { return &ShardServer{} }

// SetObs attaches a telemetry plane: LP solve series feed the shard's solve
// context, shard-surface call counters and spans are recorded per method,
// and resident-jobs / open-connections gauges sample live state at scrape
// time. Safe to call before or after Configure/Serve; a nil plane is a
// no-op.
func (s *ShardServer) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	reg := p.Registry()
	s.mu.Lock()
	s.tr = p.Tracer()
	s.lpm = obs.NewLPMetrics(reg)
	s.calls = reg.CounterVec("gavel_shard_calls_total", "Shard-surface calls served, by method.", "method")
	s.cached = reg.CounterVec("gavel_shard_cached_replies_total", "Duplicated round calls answered from the reply cache.", "method")
	if s.shard != nil && s.shard.Ctx != nil {
		s.shard.Ctx.Metrics = s.lpm
	}
	s.mu.Unlock()
	reg.GaugeFunc("gavel_shard_jobs_resident", "Jobs resident on this shard.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.shard == nil {
			return 0
		}
		return float64(s.shard.NumJobs())
	})
	reg.GaugeFunc("gavel_open_connections", "Open control-plane TCP connections.", func() float64 {
		s.mu.Lock()
		srv := s.srv
		s.mu.Unlock()
		if srv == nil {
			return 0
		}
		return float64(srv.numConns())
	})
}

// StatusText renders the shard's accounting as a /statusz section. Safe for
// concurrent scrapes (takes the server mutex).
func (s *ShardServer) StatusText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shard == nil {
		return "unconfigured\n"
	}
	st := s.statusLocked(s.shard)
	var b strings.Builder
	fmt.Fprintf(&b, "shard %d: %d jobs resident, %d admitted, %d migrated in, %d out\n",
		st.Index, len(st.Jobs), st.Admitted, st.MigratedIn, st.MigratedOut)
	fmt.Fprintf(&b, "policy: %d calls, %s total\n", st.PolicyCalls, st.PolicyTime)
	fmt.Fprintf(&b, "solves: %d (%d warm, %d remapped), %d iterations, %d dual, %d presolve reductions, %d refactorizations\n",
		st.Solve.Solves, st.Solve.WarmHits, st.Solve.RemapHits,
		st.Solve.Iterations, st.Solve.DualIterations, st.Solve.PresolveReductions,
		st.Solve.Refactorizations)
	return b.String()
}

// solveIters reads the shard context's iteration counter for span deltas.
func (s *ShardServer) solveIters(sh *cluster.Shard) int64 {
	if sh.Ctx == nil {
		return 0
	}
	return int64(sh.Ctx.Stats.Iterations)
}

// shardServiceName is the net/rpc service name of the shard surface.
const shardServiceName = "GavelShard"

// Serve starts the daemon's TCP listener on addr ("host:port"), returning
// the bound address (useful with ":0").
func (s *ShardServer) Serve(addr string) (string, error) {
	srv := gorpc.NewServer()
	if err := srv.RegisterName(shardServiceName, s); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.srv = newTCPServer(ln, srv)
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Close stops the listener and tears down every in-flight connection,
// joining their ServeConn goroutines.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.close()
}

// Hello is the protocol handshake.
func (s *ShardServer) Hello(args HelloArgs, reply *HelloReply) error {
	if err := CheckVersion(args.Version); err != nil {
		return err
	}
	*reply = HelloReply{Version: ProtocolVersion}
	return nil
}

// Ping is the liveness probe.
func (s *ShardServer) Ping(_ StatusArgs, _ *Ack) error { return nil }

// Configure installs the shard's identity. A repeat Configure with the same
// index is idempotent (a coordinator restart re-pushes config); changing the
// index of a live shard is an error.
func (s *ShardServer) Configure(cfg ShardConfig, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shard != nil {
		if cfg.Index != s.cfg.Index {
			return Errorf(CodeAlreadyConfigured,
				"shard %d cannot become shard %d", s.cfg.Index, cfg.Index)
		}
		return nil
	}
	if len(cfg.WorkerInts) == 0 {
		return Errorf(CodeBadRequest, "empty worker slice")
	}
	pol, err := PolicyFromSpec(cfg.Policy)
	if err != nil {
		return err
	}
	if !policy.ConcurrentSafe(pol) {
		return Errorf(CodeBadRequest, "policy %s is not safe for the sharded engine", pol.Name())
	}
	var ctx *policy.SolveContext
	if !cfg.ColdSolves {
		ctx = policy.NewSolveContextWith(cfg.LP)
		ctx.Metrics = s.lpm
	}
	s.shard = cluster.NewShard(cfg.Index, cfg.WorkerInts, cfg.PerServer, cfg.Prices, ctx)
	s.pol = pol
	s.cfg = cfg
	s.lastAllocRound, s.lastAssignRound = noRound, noRound
	return nil
}

// ready returns the shard under lock or a typed not-configured error.
func (s *ShardServer) ready() (*cluster.Shard, error) {
	if s.shard == nil {
		return nil, Errorf(CodeNotConfigured, "shard daemon has not been configured")
	}
	return s.shard, nil
}

// Install admits a job (arrival, migration target, or crash-recovery
// re-route). See InstallArgs for the seed-import gate. Installing an
// already-resident job is a no-op success: that is what makes Install safe
// to retry or duplicate when a reply is lost in transit.
func (s *ShardServer) Install(args InstallArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if sh.Has(args.JobID) {
		s.cached.With("Install").Inc()
		return nil
	}
	s.calls.With("Install").Inc()
	sp := s.tr.Begin(args.Trace, "shard.install").OnShard(s.cfg.Index).AttrInt("job", int64(args.JobID))
	defer sp.End(nil)
	sh.Add(args.JobID, args.ScaleFactor, args.Tput)
	if args.Migrated {
		sh.MigratedIn++
	} else {
		sh.Admitted++
	}
	for _, p := range args.Pairs {
		sh.SetPairIfAbsent(p.A, p.B, p.Ta, p.Tb)
	}
	if len(args.Seeds) > 0 && !sh.Ctx.HasSeeds() {
		sh.Ctx.ImportSeeds(args.Seeds)
	}
	return nil
}

// Remove drops a completed job.
func (s *ShardServer) Remove(args RemoveArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	sh.Remove(args.JobID)
	return nil
}

// Extract removes a job for migration, returning its throughput row and the
// shard's warm seeds for the destination.
func (s *ShardServer) Extract(args ExtractArgs, reply *ExtractReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if !sh.Has(args.JobID) {
		return Errorf(CodeUnknownJob, "job %d is not resident on shard %d", args.JobID, s.cfg.Index)
	}
	s.calls.With("Extract").Inc()
	defer s.tr.Begin(args.Trace, "shard.extract").OnShard(s.cfg.Index).AttrInt("job", int64(args.JobID)).End(nil)
	reply.ScaleFactor = sh.Cache.ScaleFactor(args.JobID)
	reply.Tput = append([]float64(nil), sh.Cache.JobTput(args.JobID)...)
	reply.Seeds = sh.Ctx.ExportSeeds()
	sh.Remove(args.JobID)
	sh.MigratedOut++
	return nil
}

// Allocate recomputes the shard's allocation over its residents, using the
// coordinator-supplied per-job info, and returns the full allocation.
func (s *ShardServer) Allocate(args AllocateArgs, reply *AllocateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if args.Round == s.lastAllocRound {
		s.cached.With("Allocate").Inc()
		*reply = s.lastAlloc
		return nil
	}
	s.calls.With("Allocate").Inc()
	sp := s.tr.Begin(args.Trace, "shard.allocate").OnShard(s.cfg.Index).AttrInt("jobs", int64(sh.NumJobs()))
	itersBefore := s.solveIters(sh)
	infos := make(map[int]policy.JobInfo, len(args.Infos))
	for _, ji := range args.Infos {
		infos[ji.ID] = ji
	}
	info := func(id int) policy.JobInfo { return infos[id] }
	if err := sh.Allocate(s.pol, s.cfg.PairGainThreshold, s.cfg.MaxPairsPerJob, info); err != nil {
		err = Errorf(CodeInternal, "allocate: %v", err)
		sp.End(err)
		return err
	}
	sp.AttrInt("iterations", s.solveIters(sh)-itersBefore).End(nil)
	reply.IDs = append([]int(nil), sh.AllocIDs...)
	reply.Units = sh.Alloc.Units
	reply.X = sh.Alloc.X
	s.lastAllocRound, s.lastAlloc = args.Round, *reply
	return nil
}

// AssignRound runs one mechanism round over the current allocation.
func (s *ShardServer) AssignRound(args AssignRoundArgs, reply *AssignRoundReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	if sh.Alloc == nil && sh.NumJobs() > 0 {
		return Errorf(CodeNoAllocation, "AssignRound before any Allocate on shard %d", s.cfg.Index)
	}
	if args.Round == s.lastAssignRound {
		s.cached.With("AssignRound").Inc()
		*reply = s.lastAssign
		return nil
	}
	s.calls.With("AssignRound").Inc()
	sp := s.tr.Begin(args.Trace, "shard.assign").OnShard(s.cfg.Index).AttrInt("skip", int64(len(args.SkipJobs)))
	var skip func(id int) bool
	if len(args.SkipJobs) > 0 {
		set := make(map[int]bool, len(args.SkipJobs))
		for _, id := range args.SkipJobs {
			set[id] = true
		}
		skip = func(id int) bool { return set[id] }
	}
	assigns, err := sh.AssignRound(args.RoundSeconds, skip)
	if err != nil {
		err = Errorf(CodeInternal, "assign round: %v", err)
		sp.End(err)
		return err
	}
	sp.AttrInt("assigns", int64(len(assigns))).End(nil)
	reply.Assigns = assigns
	s.lastAssignRound, s.lastAssign = args.Round, *reply
	return nil
}

// Observe replays a round's measured pair throughputs into the cache.
func (s *ShardServer) Observe(args ObserveArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	for _, o := range args.Obs {
		sh.Observe(o.A, o.B, o.Type, o.Ta, o.Tb)
	}
	return nil
}

// ObserveJob overwrites one resident job's isolated throughput row (the
// coordinator's measured/clamped feedback). Departed jobs are a no-op so a
// push racing a removal stays harmless.
func (s *ShardServer) ObserveJob(args ObserveJobArgs, _ *Ack) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	sh.ObserveJob(args.JobID, args.Tput)
	return nil
}

// Snapshot returns the shard's recovery snapshot: warm seeds plus status.
func (s *ShardServer) Snapshot(_ SnapshotArgs, reply *SnapshotReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	reply.Seeds = sh.Ctx.ExportSeeds()
	reply.Status = s.statusLocked(sh)
	return nil
}

// Status returns the shard's accounting.
func (s *ShardServer) Status(_ StatusArgs, reply *ShardStatus) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, err := s.ready()
	if err != nil {
		return err
	}
	*reply = s.statusLocked(sh)
	return nil
}

func (s *ShardServer) statusLocked(sh *cluster.Shard) ShardStatus {
	st := ShardStatus{
		Index:       s.cfg.Index,
		Jobs:        sh.Jobs(),
		Admitted:    sh.Admitted,
		MigratedIn:  sh.MigratedIn,
		MigratedOut: sh.MigratedOut,
		PolicyCalls: sh.PolicyCalls,
		PolicyTime:  sh.PolicyTime,
	}
	if sh.Ctx != nil {
		st.Solve = sh.Ctx.Stats
	}
	return st
}

// tcpServer owns a listener and its per-connection goroutines so Close can
// actually stop everything (the seed's lease server leaked its ServeConn
// goroutines until process exit).
type tcpServer struct {
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func newTCPServer(ln net.Listener, srv *gorpc.Server) *tcpServer {
	t := &tcpServer{ln: ln, conns: map[net.Conn]struct{}{}}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.conns[conn] = struct{}{}
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				srv.ServeConn(conn)
				t.mu.Lock()
				delete(t.conns, conn)
				t.mu.Unlock()
				conn.Close()
			}()
		}
	}()
	return t
}

// numConns reports the live connection count (the open-connections gauge).
func (t *tcpServer) numConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

func (t *tcpServer) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
