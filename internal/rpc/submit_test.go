package rpc

// Submission-plane engine tests: spec parsing, edge validation, idempotent
// dedupe, backpressure with retry-after hints, the per-tenant quota ladder
// (token bucket, resident cap, SLO-ordered shedding), withdraw and
// abandoned-client lifecycles, and the declared-vs-measured quarantine clamp.
// The crash/replay acceptance for queued submissions lives in
// service_fault_test.go.

import (
	"math"
	"reflect"
	"testing"
)

// newSubmitService builds a two-shard Service with the submission plane
// enabled (no journal unless given).
func newSubmitService(t *testing.T, journal string, adm AdmissionConfig) *Service {
	t.Helper()
	_, c0 := NewLocalShard()
	_, c1 := NewLocalShard()
	cfg := testServiceConfig(journal)
	cfg.Admission = &adm
	svc, err := NewService(cfg, []ShardClient{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func subArgs(tenant, key string, slo int, tput []float64) SubmitArgs {
	return SubmitArgs{
		Tenant: tenant, Key: key, Name: key,
		TotalSteps: 1000, ScaleFactor: 1, Tput: tput, SLOClass: slo,
	}
}

func mustSubmit(t *testing.T, svc *Service, a SubmitArgs) SubmitReply {
	t.Helper()
	rep, err := svc.Submit(a)
	if err != nil {
		t.Fatalf("submit %s/%s: %v", a.Tenant, a.Key, err)
	}
	return rep
}

func pollState(t *testing.T, svc *Service, tenant, key string) SubmissionState {
	t.Helper()
	rep, err := svc.Poll(PollArgs{Tenant: tenant, Key: key})
	if err != nil {
		t.Fatalf("poll %s/%s: %v", tenant, key, err)
	}
	return rep.State
}

func TestParseSubmitSpecRoundTrip(t *testing.T) {
	specs := []string{
		"tenant=acme,key=job-7",
		"tenant=acme,key=job-7,name=resnet50,steps=5000,sf=2,slo=1,tput=120;80;30",
		"tenant=t,key=k,tput=0;0",
		"tenant=t,key=k,steps=0.5",
	}
	for _, s := range specs {
		a, err := ParseSubmitSpec(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		b, err := ParseSubmitSpec(a.SpecString())
		if err != nil {
			t.Fatalf("reparse %q: %v", a.SpecString(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip of %q changed: %+v vs %+v", s, a, b)
		}
	}
	bad := []string{
		"",
		"tenant=acme",                  // no key
		"key=k",                        // no tenant
		"tenant=a,key=k,bogus=1",       // unknown key
		"tenant=a,key=k,steps=NaN",     // non-finite steps
		"tenant=a,key=k,steps=-1",      // negative steps
		"tenant=a,key=k,sf=0",          // scale factor below 1
		"tenant=a,key=k,tput=1;x",      // unparsable rate
		"tenant=a,key=k,tput=1;-2",     // negative rate
		"tenant=a;b,key=k",             // reserved char in tenant
		"tenant=a,key=k,name=m,e=ssy,", // stray element
	}
	for _, s := range bad {
		if _, err := ParseSubmitSpec(s); err == nil {
			t.Fatalf("parse %q: want error", s)
		} else if CodeOf(err) != CodeBadRequest {
			t.Fatalf("parse %q: code %v, want CodeBadRequest", s, CodeOf(err))
		}
	}
}

// TestSubmitValidation: malformed submissions are refused at the edge with
// typed CodeBadRequest errors — and the same shape checks guard the direct
// Admit path the synthetic batch uses.
func TestSubmitValidation(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{})
	cases := []SubmitArgs{
		subArgs("", "k", 0, []float64{1, 1}),            // no tenant
		subArgs("a", "", 0, []float64{1, 1}),            // no key
		subArgs("a", "k", 0, []float64{1}),              // wrong row length
		subArgs("a", "k", 0, []float64{1, math.NaN()}),  // NaN rate
		subArgs("a", "k", 0, []float64{1, math.Inf(1)}), // infinite rate
		subArgs("a", "k", 0, []float64{1, -1}),          // negative rate
		{Tenant: "a", Key: "k", TotalSteps: math.NaN(), Tput: []float64{1, 1}},
		{Tenant: "a", Key: "k", TotalSteps: -5, Tput: []float64{1, 1}},
	}
	for i, a := range cases {
		if _, err := svc.Submit(a); CodeOf(err) != CodeBadRequest {
			t.Fatalf("case %d: Submit(%+v) = %v, want CodeBadRequest", i, a, err)
		}
	}
	if _, err := svc.Admit(1, 1, []float64{1, math.Inf(1)}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("Admit with infinite rate: %v, want CodeBadRequest", err)
	}

	// A coordinator without the plane refuses the surface outright.
	_, c0 := NewLocalShard()
	bare, err := NewService(testServiceConfig(""), []ShardClient{c0})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Submit(subArgs("a", "k", 0, []float64{1, 1})); CodeOf(err) != CodeBadRequest {
		t.Fatalf("Submit on plane-less coordinator: %v, want CodeBadRequest", err)
	}
}

// TestSubmitDedupes: resubmitting an idempotency key returns the original
// job's identity and current state instead of creating a duplicate.
func TestSubmitDedupes(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{})
	first := mustSubmit(t, svc, subArgs("acme", "k0", 0, []float64{1, 1}))
	again := mustSubmit(t, svc, subArgs("acme", "k0", 0, []float64{2, 2}))
	if again.JobID != first.JobID || again.State != SubmissionQueued {
		t.Fatalf("retry returned %+v, want job %d queued", again, first.JobID)
	}
	if _, err := svc.AdmitPending(0); err != nil {
		t.Fatal(err)
	}
	after := mustSubmit(t, svc, subArgs("acme", "k0", 0, []float64{1, 1}))
	if after.JobID != first.JobID || after.State != SubmissionAdmitted {
		t.Fatalf("post-admission retry returned %+v, want job %d admitted", after, first.JobID)
	}
	if ts := svc.TenantStats(); len(ts) != 1 || ts[0].Submitted != 1 {
		t.Fatalf("dedupe double-counted: %+v", ts)
	}
}

// TestSubmitBackpressure: a tenant over its queue bound is refused with
// CodeOverload carrying a parseable retry-after hint, and the refusal is
// counted and logged without consuming a job ID.
func TestSubmitBackpressure(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{MaxQueuePerTenant: 2, RatePerRound: 1})
	mustSubmit(t, svc, subArgs("acme", "k0", 0, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("acme", "k1", 0, []float64{1, 1}))
	_, err := svc.Submit(subArgs("acme", "k2", 0, []float64{1, 1}))
	if CodeOf(err) != CodeOverload {
		t.Fatalf("over-queue Submit: %v, want CodeOverload", err)
	}
	if ra := RetryAfter(err); ra != 2 {
		t.Fatalf("retry-after hint %d, want 2 (2 queued / rate 1)", ra)
	}
	if IsTransient(CodeOf(err)) {
		t.Fatal("CodeOverload must not be auto-retried as transient")
	}
	ts := svc.TenantStats()[0]
	if ts.Refused != 1 || ts.Submitted != 2 {
		t.Fatalf("refusal accounting off: %+v", ts)
	}
	found := false
	for _, d := range svc.Decisions() {
		if d.Action == "refuse" && d.Key == "k2" {
			found = true
		}
	}
	if !found {
		t.Fatal("refusal was not logged in the decision log")
	}
	// The refused key is free to retry once the queue drains.
	if _, err := svc.AdmitPending(0); err != nil {
		t.Fatal(err)
	}
	if rep := mustSubmit(t, svc, subArgs("acme", "k2", 0, []float64{1, 1})); rep.State != SubmissionQueued {
		t.Fatalf("retry after drain: %+v", rep)
	}
}

// TestAdmitPendingQuotas: the token bucket rations admissions per round and
// the resident cap defers queued work until running jobs retire.
func TestAdmitPendingQuotas(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{
		MaxQueuePerTenant: 10, RatePerRound: 1, Burst: 2, MaxResidentPerTenant: 3,
	})
	for _, k := range []string{"k0", "k1", "k2", "k3", "k4"} {
		mustSubmit(t, svc, subArgs("acme", k, 0, []float64{1, 1}))
	}
	admitRound := func(r int64) int {
		t.Helper()
		ids, err := svc.AdmitPending(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.EndRound(r); err != nil {
			t.Fatal(err)
		}
		return len(ids)
	}
	if n := admitRound(0); n != 2 {
		t.Fatalf("round 0 admitted %d, want the burst of 2", n)
	}
	if n := admitRound(1); n != 1 {
		t.Fatalf("round 1 admitted %d, want the refill of 1", n)
	}
	// Tokens are available but the tenant sits at its resident cap.
	if n := admitRound(2); n != 0 {
		t.Fatalf("round 2 admitted %d past the resident cap, want 0", n)
	}
	// Retiring one resident job frees a slot for the next round's drain.
	subs := svc.Submissions()
	if err := svc.Remove(subs[0].JobID); err != nil {
		t.Fatal(err)
	}
	if n := admitRound(3); n != 1 {
		t.Fatalf("round 3 admitted %d after a retirement, want 1", n)
	}
	ts := svc.TenantStats()[0]
	if ts.Admitted != 4 || ts.Queued != 1 || ts.Done != 1 {
		t.Fatalf("quota accounting off: %+v", ts)
	}
}

// TestShedLadderPrefersLowSLO: sustained overload escalates from deferring to
// shedding, rejecting the lowest SLO class first and the most recent arrival
// within a class, until the global queue is back under the high-water mark.
func TestShedLadderPrefersLowSLO(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{
		MaxQueuePerTenant: 10, MaxResidentPerTenant: 1,
		ShedQueueDepth: 2, ShedAfterRounds: 2,
	})
	mustSubmit(t, svc, subArgs("acme", "k0", 1, []float64{1, 1})) // admitted round 0
	mustSubmit(t, svc, subArgs("acme", "k1", 0, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("acme", "k2", 0, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("acme", "k3", 1, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("acme", "k4", 0, []float64{1, 1}))
	for r := int64(0); r < 3; r++ {
		if _, err := svc.AdmitPending(r); err != nil {
			t.Fatal(err)
		}
		if err := svc.EndRound(r); err != nil {
			t.Fatal(err)
		}
	}
	// Victims: lowest SLO class, most recent first — k4 then k2, never the
	// class-1 k3 while class-0 work remains.
	want := map[string]SubmissionState{
		"k0": SubmissionAdmitted,
		"k1": SubmissionQueued,
		"k2": SubmissionRejected,
		"k3": SubmissionQueued,
		"k4": SubmissionRejected,
	}
	for k, ws := range want {
		if got := pollState(t, svc, "acme", k); got != ws {
			t.Fatalf("%s: state %v, want %v", k, got, ws)
		}
	}
	if ts := svc.TenantStats()[0]; ts.Shed != 2 {
		t.Fatalf("shed count %d, want 2 (%+v)", ts.Shed, ts)
	}
	shed := 0
	for _, d := range svc.Decisions() {
		if d.Action == "shed" {
			shed++
		}
	}
	if shed != 2 {
		t.Fatalf("decision log has %d shed entries, want 2", shed)
	}
}

// TestWithdrawLifecycle: queued submissions withdraw immediately; admitted
// ones are flagged and leave on the next AdmitPending pass; terminal and
// unknown keys are safe no-ops.
func TestWithdrawLifecycle(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{MaxResidentPerTenant: 1})
	a := mustSubmit(t, svc, subArgs("acme", "ka", 0, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("acme", "kb", 0, []float64{1, 1}))
	if _, err := svc.AdmitPending(0); err != nil {
		t.Fatal(err)
	}
	if !svc.HasJob(a.JobID) {
		t.Fatal("first submission was not admitted")
	}
	// kb is still queued: withdrawal is immediate.
	if rep, err := svc.Withdraw(WithdrawArgs{Tenant: "acme", Key: "kb"}); err != nil || rep.State != SubmissionWithdrawn {
		t.Fatalf("withdraw queued: %+v, %v", rep, err)
	}
	// ka is admitted: flagged now, removed by the next drain.
	if rep, err := svc.Withdraw(WithdrawArgs{Tenant: "acme", Key: "ka"}); err != nil || rep.State != SubmissionAdmitted {
		t.Fatalf("withdraw admitted: %+v, %v", rep, err)
	}
	if _, err := svc.AdmitPending(1); err != nil {
		t.Fatal(err)
	}
	if got := pollState(t, svc, "acme", "ka"); got != SubmissionWithdrawn {
		t.Fatalf("flagged withdrawal did not land: %v", got)
	}
	if svc.HasJob(a.JobID) {
		t.Fatal("withdrawn job still resident in the mirror")
	}
	// Idempotent repeats and unknown keys.
	if rep, err := svc.Withdraw(WithdrawArgs{Tenant: "acme", Key: "ka"}); err != nil || rep.State != SubmissionWithdrawn {
		t.Fatalf("repeat withdraw: %+v, %v", rep, err)
	}
	if rep, err := svc.Withdraw(WithdrawArgs{Tenant: "acme", Key: "nope"}); err != nil || rep.State != SubmissionUnknown {
		t.Fatalf("unknown withdraw: %+v, %v", rep, err)
	}
	if ts := svc.TenantStats()[0]; ts.Withdrawn != 2 || ts.Resident != 0 || ts.Queued != 0 {
		t.Fatalf("withdraw accounting off: %+v", ts)
	}
}

// TestExpireAbandoned: a tenant that stops contacting the coordinator past
// the TTL has its queued and resident submissions withdrawn; a polling tenant
// is untouched.
func TestExpireAbandoned(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{AbandonAfterRounds: 2, MaxResidentPerTenant: 1})
	mustSubmit(t, svc, subArgs("gone", "k0", 0, []float64{1, 1}))
	mustSubmit(t, svc, subArgs("gone", "k1", 0, []float64{1, 1})) // stays queued (resident cap)
	mustSubmit(t, svc, subArgs("alive", "k0", 0, []float64{1, 1}))
	if _, err := svc.AdmitPending(0); err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r <= 2; r++ {
		if err := svc.EndRound(r); err != nil {
			t.Fatal(err)
		}
		// Only "alive" keeps polling; Poll advances its liveness clock.
		if _, err := svc.Poll(PollArgs{Tenant: "alive", Key: "k0"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.ExpireAbandoned(3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdmitPending(3); err != nil {
		t.Fatal(err)
	}
	if got := pollState(t, svc, "gone", "k0"); got != SubmissionWithdrawn {
		t.Fatalf("abandoned resident job: %v, want withdrawn", got)
	}
	if got := pollState(t, svc, "gone", "k1"); got != SubmissionWithdrawn {
		t.Fatalf("abandoned queued job: %v, want withdrawn", got)
	}
	if got := pollState(t, svc, "alive", "k0"); got != SubmissionAdmitted {
		t.Fatalf("live tenant's job: %v, want admitted", got)
	}
	abandons := 0
	for _, d := range svc.Decisions() {
		if d.Action == "abandon" && d.Tenant == "gone" {
			abandons++
		}
	}
	if abandons != 2 {
		t.Fatalf("decision log has %d abandon entries for tenant gone, want 2", abandons)
	}
}

// TestQuarantineClamp: a tenant declaring 3x its measured throughput is
// quarantined after the configured number of divergent reviews; its mirror
// rows are clamped to measured values (declared x ratio where unmeasured),
// and fresh admissions enter pre-clamped.
func TestQuarantineClamp(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{}) // defaults: div 2.0, after 3
	rep := mustSubmit(t, svc, subArgs("liar", "k0", 0, []float64{3, 3}))
	if _, err := svc.AdmitPending(0); err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 3; r++ {
		if err := svc.ObserveMeasured(rep.JobID, 0, 1.0); err != nil {
			t.Fatal(err)
		}
		if err := svc.EndRound(r); err != nil {
			t.Fatal(err)
		}
	}
	ts := svc.TenantStats()[0]
	if !ts.Quarantined {
		t.Fatalf("tenant not quarantined after 3 divergent reviews: %+v", ts)
	}
	if math.Abs(ts.ClampRatio-1.0/3.0) > 1e-9 {
		t.Fatalf("clamp ratio %v, want 1/3", ts.ClampRatio)
	}
	k := svc.shardOf[rep.JobID]
	row := svc.shards[k].tput[rep.JobID]
	if row[0] != 1.0 || row[1] != 1.0 {
		t.Fatalf("mirror row %v, want [1 1] (measured on type 0, declared/3 on type 1)", row)
	}
	if n := svc.QuarantinedJobs(k); n != 1 {
		t.Fatalf("QuarantinedJobs(%d) = %d, want 1", k, n)
	}
	quarantined := false
	for _, d := range svc.Decisions() {
		if d.Action == "quarantine" && d.Tenant == "liar" {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("quarantine decision was not logged")
	}
	// A fresh submission from the quarantined tenant installs pre-scaled.
	rep2 := mustSubmit(t, svc, subArgs("liar", "k1", 0, []float64{3, 3}))
	if _, err := svc.AdmitPending(3); err != nil {
		t.Fatal(err)
	}
	k2 := svc.shardOf[rep2.JobID]
	row2 := svc.shards[k2].tput[rep2.JobID]
	if row2[0] != 1.0 || row2[1] != 1.0 {
		t.Fatalf("fresh admission row %v, want pre-clamped [1 1]", row2)
	}
	// Quarantine is one-way: honest rounds afterward do not lift it.
	if err := svc.ObserveMeasured(rep.JobID, 0, 3.0); err != nil {
		t.Fatal(err)
	}
	if err := svc.EndRound(3); err != nil {
		t.Fatal(err)
	}
	if ts := svc.TenantStats()[0]; !ts.Quarantined {
		t.Fatal("quarantine lifted by a single honest round")
	}
}

// TestMeasuredSamplesIgnoreGarbage: samples for unknown jobs, bad types, or
// non-finite rates are dropped without error (chaos-duplicated or late
// reports must be harmless).
func TestMeasuredSamplesIgnoreGarbage(t *testing.T) {
	svc := newSubmitService(t, "", AdmissionConfig{})
	rep := mustSubmit(t, svc, subArgs("acme", "k0", 0, []float64{1, 1}))
	// Still queued: samples are dropped until admitted.
	if err := svc.ObserveMeasured(rep.JobID, 0, 5); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		id, typ int
		rate    float64
	}{
		{rep.JobID + 999, 0, 1},
		{rep.JobID, -1, 1},
		{rep.JobID, 2, 1},
		{rep.JobID, 0, math.NaN()},
		{rep.JobID, 0, math.Inf(1)},
		{rep.JobID, 0, 0},
		{rep.JobID, 0, -3},
	} {
		if err := svc.ObserveMeasured(bad.id, bad.typ, bad.rate); err != nil {
			t.Fatalf("garbage sample %+v errored: %v", bad, err)
		}
	}
	if err := svc.EndRound(0); err != nil {
		t.Fatal(err)
	}
	if ts := svc.TenantStats()[0]; ts.Quarantined {
		t.Fatalf("garbage samples moved trust state: %+v", ts)
	}
}
