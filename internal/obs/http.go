package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Server is the live introspection endpoint every daemon mounts under
// -obs-listen. It serves:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      "ok" (liveness probe)
//	/statusz      human-readable status sections registered by the host
//	/debug/trace  the trace ring as JSONL, newest state at scrape time
//	/debug/pprof  the standard Go profiling handlers
//
// Sections and handlers may be added before or after Serve; the server is
// safe for concurrent scrapes, but the section callbacks must themselves be
// safe to call from the scrape goroutine.
type Server struct {
	plane *Plane

	mu       sync.Mutex
	sections map[string]func() string
	ln       net.Listener
	srv      *http.Server
}

// NewServer returns a server over the given plane (which must be non-nil —
// an obs-off daemon simply never constructs a Server).
func NewServer(p *Plane) *Server {
	return &Server{plane: p, sections: map[string]func() string{}}
}

// AddStatus registers a named /statusz section. The callback runs on every
// scrape and must be concurrency-safe.
func (s *Server) AddStatus(name string, fn func() string) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.sections[name] = fn
	s.mu.Unlock()
}

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.plane.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.mu.Lock()
		names := make([]string, 0, len(s.sections))
		for n := range s.sections {
			names = append(names, n)
		}
		fns := make([]func() string, 0, len(names))
		sort.Strings(names)
		for _, n := range names {
			fns = append(fns, s.sections[n])
		}
		s.mu.Unlock()
		for i, n := range names {
			fmt.Fprintf(w, "=== %s ===\n%s\n", n, fns[i]())
		}
		if tr := s.plane.Tracer(); tr != nil {
			fmt.Fprintf(w, "=== trace ring ===\n%s\n", tr.SummarizeSpans())
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.plane.Tracer().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves in a background goroutine, returning the bound
// address (useful with ":0"). Call Close to stop.
func (s *Server) Serve(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Serve.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
