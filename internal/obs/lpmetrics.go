package obs

import "time"

// LPMetrics is the live-series bundle for the LP core. policy.SolveContext
// feeds it on every solve, turning what used to be end-of-run SolveStats
// aggregates into scrapeable counters. A nil *LPMetrics (and nil instruments
// inside) no-ops, so the solver hot path pays only nil checks when
// observability is off.
//
// Defined here rather than in policy to keep obs dependency-free: the
// context passes plain numbers, obs never imports lp.
type LPMetrics struct {
	reg *Registry

	Solves             *CounterVec // kind: warm | remap | cold | fallback
	Iterations         *Counter
	DualIterations     *Counter
	PresolveReductions *Counter
	Refactorizations   *Counter
	LabelSolves        *CounterVec // per caller-supplied solve label
	SolveSeconds       *Histogram
}

// NewLPMetrics registers the LP series on r (nil r yields a nil bundle).
func NewLPMetrics(r *Registry) *LPMetrics {
	if r == nil {
		return nil
	}
	m := &LPMetrics{
		reg:                r,
		Solves:             r.CounterVec("gavel_lp_solves_total", "LP solves by warm-start outcome.", "kind"),
		Iterations:         r.Counter("gavel_lp_iterations_total", "Simplex iterations across all solves."),
		DualIterations:     r.Counter("gavel_lp_dual_iterations_total", "Dual simplex iterations across all solves."),
		PresolveReductions: r.Counter("gavel_lp_presolve_reductions_total", "Rows+columns removed by presolve."),
		Refactorizations:   r.Counter("gavel_lp_refactorizations_total", "Basis LU refactorizations in the revised engine."),
		LabelSolves:        r.CounterVec("gavel_lp_label_solves_total", "LP solves by caller label.", "label"),
		SolveSeconds:       r.Histogram("gavel_lp_solve_seconds", "Wall-clock per LP solve.", DurationBuckets),
	}
	// Pre-register the outcome children so scrapes see the full vocabulary
	// at zero before the first solve of each kind lands.
	for _, k := range []string{"warm", "remap", "cold", "fallback"} {
		m.Solves.With(k)
	}
	return m
}

// Start reads the clock for a solve timing (zero time when nil, which makes
// the matching Observe a no-op).
func (m *LPMetrics) Start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return m.reg.Now()
}

// RecordSolve feeds one completed solve into the live series.
func (m *LPMetrics) RecordSolve(kind, label string, iterations, dualIterations, presolveReductions, refactorizations int, start time.Time) {
	if m == nil {
		return
	}
	m.Solves.With(kind).Inc()
	m.Iterations.Add(iterations)
	m.DualIterations.Add(dualIterations)
	m.PresolveReductions.Add(presolveReductions)
	m.Refactorizations.Add(refactorizations)
	if label != "" {
		m.LabelSolves.With(label).Inc()
	}
	if !start.IsZero() {
		m.SolveSeconds.Observe(m.reg.Since(start))
	}
}
