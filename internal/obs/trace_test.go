package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRoundTrace(t *testing.T) {
	if RoundTrace(7) != "round-000007" {
		t.Fatalf("RoundTrace(7) = %q", RoundTrace(7))
	}
	if RoundTrace(7) != RoundTrace(7) || RoundTrace(7) == RoundTrace(8) {
		t.Fatal("RoundTrace must be deterministic and distinct per round")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	tr.SetClock(time.Now)
	tr.SetWriter(&strings.Builder{})
	if tr.Total() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer should be empty")
	}
	sp := tr.Begin("round-000001", "x")
	if sp != nil {
		t.Fatal("nil tracer Begin should return nil")
	}
	sp.OnShard(1).Attr("k", "v").AttrInt("n", 2).End(nil)
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "s", StartNs: int64(i)})
	}
	got := tr.Spans()
	if len(got) != 3 || tr.Total() != 5 {
		t.Fatalf("ring len=%d total=%d", len(got), tr.Total())
	}
	for i, sp := range got {
		if sp.StartNs != int64(i+2) {
			t.Fatalf("ring not oldest-first: %+v", got)
		}
	}
}

func TestSpanLifecycleWithStubClock(t *testing.T) {
	tr := NewTracer(8)
	now := time.Unix(100, 0)
	tr.SetClock(func() time.Time { return now })
	sp := tr.Begin(RoundTrace(3), "shard.allocate").OnShard(2).AttrInt("jobs", 40)
	now = now.Add(5 * time.Millisecond)
	sp.End(errors.New("boom"))
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	got := spans[0]
	if got.Trace != "round-000003" || got.Name != "shard.allocate" || got.Shard != 2 {
		t.Fatalf("span = %+v", got)
	}
	if got.DurNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("dur = %d", got.DurNs)
	}
	if got.Attrs["jobs"] != "40" || got.Err != "boom" {
		t.Fatalf("span = %+v", got)
	}
}

func TestTracerJSONL(t *testing.T) {
	var sink strings.Builder
	tr := NewTracer(4)
	tr.SetClock(func() time.Time { return time.Unix(1, 0) })
	tr.SetWriter(&sink)
	tr.Begin(RoundTrace(1), "journal.commit").AttrInt("bytes", 128).End(nil)
	line := sink.String()
	if !strings.Contains(line, `"trace":"round-000001"`) || !strings.Contains(line, `"name":"journal.commit"`) {
		t.Fatalf("jsonl = %q", line)
	}
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("jsonl line must end in newline")
	}
	var ring strings.Builder
	if err := tr.WriteJSONL(&ring); err != nil {
		t.Fatal(err)
	}
	if ring.String() != line {
		t.Fatalf("ring jsonl %q != sink %q", ring.String(), line)
	}
}

func TestSummarizeSpans(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Name: "b"})
	tr.Record(Span{Name: "a"})
	tr.Record(Span{Name: "a"})
	s := tr.SummarizeSpans()
	ai, bi := strings.Index(s, "a"), strings.Index(s, "b")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("summary = %q", s)
	}
	if tr.CountSpans()["a"] != 2 {
		t.Fatalf("counts = %v", tr.CountSpans())
	}
}
