package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per short window so the four
// heap/GC gauges below don't each stop the world on the same scrape.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memSampler) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) > 250*time.Millisecond {
		runtime.ReadMemStats(&m.stat)
		m.at = now
	}
	return m.stat
}

// RegisterRuntimeMetrics installs the Go runtime self-metrics every daemon
// exports: goroutine count, heap in use, GC pause totals. All are volatile
// (sampled at scrape time) and therefore excluded from deterministic dumps.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	ms := &memSampler{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_inuse_bytes", "Bytes of heap memory in use.", func() float64 {
		return float64(ms.read().HeapInuse)
	})
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", func() float64 {
		return float64(ms.read().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return float64(ms.read().NumGC)
	})
}
