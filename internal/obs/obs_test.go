package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("x", "h")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("x_seconds", "h", DurationBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	r.CounterVec("v_total", "h", "k").With("a").Inc()
	r.GaugeVec("vg", "h", "k").With("a").Set(1)
	r.HistogramVec("vh", "h", nil, "k").With("a").Observe(1)
	r.GaugeFunc("fn", "h", func() float64 { return 1 })
	if r.DumpDeterministic() != "" {
		t.Fatal("nil registry dump should be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	r.SetClock(time.Now)
	if !r.Now().IsZero() || r.Since(time.Now()) != 0 {
		t.Fatal("nil registry clock should be zero")
	}

	var p *Plane
	if p.Registry() != nil || p.Tracer() != nil {
		t.Fatal("nil plane components should be nil")
	}
	p.SetClock(time.Now)

	var m *LPMetrics
	m.RecordSolve("warm", "l", 1, 0, 0, 0, m.Start())
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gavel_rounds_total", "Rounds sealed.")
	c.Add(3)
	v := r.CounterVec("gavel_admission_decisions_total", "Decisions.", "action")
	v.With("shed").Add(2)
	v.With("refuse").Inc()
	g := r.Gauge("gavel_jobs_resident", "Jobs resident.")
	g.Set(17)
	out := r.DumpDeterministic()
	for _, want := range []string{
		"# TYPE gavel_rounds_total counter",
		"gavel_rounds_total 3",
		`gavel_admission_decisions_total{action="refuse"} 1`,
		`gavel_admission_decisions_total{action="shed"} 2`,
		"gavel_jobs_resident 17",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Families sorted by name: admission before jobs before rounds.
	ai := strings.Index(out, "gavel_admission_decisions_total")
	ji := strings.Index(out, "gavel_jobs_resident")
	ri := strings.Index(out, "gavel_rounds_total")
	if !(ai < ji && ji < ri) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Children sorted by label values: refuse before shed.
	if !(strings.Index(out, `action="refuse"`) < strings.Index(out, `action="shed"`)) {
		t.Fatalf("children not sorted:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	out := r.DumpDeterministic()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 6.05",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 4 || h.Sum() != 6.05 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	// Boundary lands in the bucket whose upper bound equals it (le is <=).
	h2 := r.Histogram("edge_seconds", "h", []float64{1})
	h2.Observe(1)
	if !strings.Contains(r.DumpDeterministic(), `edge_seconds_bucket{le="1"} 1`) {
		t.Fatal("boundary observation should count in le=1")
	}
}

func TestVolatileExcludedFromDeterministicDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total", "h").Inc()
	r.GaugeFunc("go_goroutines", "h", func() float64 { return 42 })
	det := r.DumpDeterministic()
	if strings.Contains(det, "go_goroutines") {
		t.Fatalf("volatile family leaked into deterministic dump:\n%s", det)
	}
	var full strings.Builder
	if err := r.WritePrometheus(&full); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), "go_goroutines 42") {
		t.Fatalf("volatile family missing from full exposition:\n%s", full.String())
	}
}

func TestReRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatal("re-registration should share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// Concurrent increments from many goroutines must sum deterministically —
// the property that lets shard fan-out goroutines share one LPMetrics.
func TestConcurrentDeterminism(t *testing.T) {
	run := func() string {
		r := NewRegistry()
		c := r.Counter("n_total", "h")
		h := r.Histogram("d_seconds", "h", []float64{0.5, 1, 2})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Add(g + 1)
					h.Observe(float64(i%4) * 0.6)
				}
			}(g)
		}
		wg.Wait()
		return r.DumpDeterministic()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("concurrent runs diverged:\n%s\n---\n%s", a, b)
	}
}

func TestInjectableClock(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	start := r.Now()
	now = now.Add(250 * time.Millisecond)
	if got := r.Since(start); got != 0.25 {
		t.Fatalf("Since = %v, want 0.25", got)
	}
	m := NewLPMetrics(r)
	st := m.Start()
	now = now.Add(time.Second)
	m.RecordSolve("warm", "maxmin", 10, 2, 3, 1, st)
	out := r.DumpDeterministic()
	for _, want := range []string{
		`gavel_lp_solves_total{kind="warm"} 1`,
		`gavel_lp_solves_total{kind="cold"} 0`,
		"gavel_lp_iterations_total 10",
		"gavel_lp_dual_iterations_total 2",
		"gavel_lp_presolve_reductions_total 3",
		"gavel_lp_refactorizations_total 1",
		`gavel_lp_label_solves_total{label="maxmin"} 1`,
		"gavel_lp_solve_seconds_sum 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "h", "k").With("a\"b\\c\nd").Inc()
	out := r.DumpDeterministic()
	if !strings.Contains(out, `x_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", out)
	}
}
