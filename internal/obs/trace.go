package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// RoundTrace mints the deterministic trace ID for a scheduling round. The
// coordinator stamps it on every wire call it fans out for that round, so a
// span anywhere in the deployment joins back to the round that caused it.
func RoundTrace(round int64) string {
	return fmt.Sprintf("round-%06d", round)
}

// Span is one completed timed operation, tagged with the round trace it
// belongs to. Attrs is a flat string map so JSON output is stable (Go
// marshals map keys sorted).
type Span struct {
	Trace   string            `json:"trace,omitempty"`
	Name    string            `json:"name"`
	Shard   int               `json:"shard,omitempty"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Err     string            `json:"err,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring buffer and, optionally, an
// append-only JSONL writer. A nil *Tracer no-ops everywhere, so call sites
// trace unconditionally. Recording draws nothing from any rand stream; under
// a stub clock (SetClock) span timings are reproducible.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	ring  []Span
	next  int
	full  bool
	total int64
	w     io.Writer
	werr  error
}

// DefaultRingSpans is the trace ring capacity when no knob overrides it.
const DefaultRingSpans = 4096

// NewTracer returns a tracer with a ring of the given capacity (values < 1
// fall back to DefaultRingSpans).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultRingSpans
	}
	return &Tracer{now: time.Now, ring: make([]Span, capacity)}
}

// SetClock replaces the tracer's clock; deterministic tests install a stub.
func (t *Tracer) SetClock(fn func() time.Time) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.now = fn
	t.mu.Unlock()
}

// SetWriter attaches a JSONL sink: every recorded span is marshaled and
// appended as one line. Write errors are sticky and silence the sink — a
// full disk must not take the scheduler down with it.
func (t *Tracer) SetWriter(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.w = w
	t.werr = nil
	t.mu.Unlock()
}

// Record appends a finished span to the ring (and the JSONL sink, if set).
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	if t.w != nil && t.werr == nil {
		line, err := json.Marshal(sp)
		if err == nil {
			line = append(line, '\n')
			_, err = t.w.Write(line)
		}
		t.werr = err
	}
	t.mu.Unlock()
}

// Total returns the number of spans recorded over the tracer's lifetime
// (including ones the ring has since evicted).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the ring's contents oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL renders the ring oldest-first, one span per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, sp := range t.Spans() {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// ActiveSpan is an in-flight span started by Begin. Methods on a nil
// *ActiveSpan no-op, so tracing code never branches on whether a tracer is
// attached.
type ActiveSpan struct {
	t     *Tracer
	start time.Time
	sp    Span
}

// Begin starts a span; finish it with End. Returns nil when the tracer is
// nil.
func (t *Tracer) Begin(trace, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	now := t.now()
	t.mu.Unlock()
	return &ActiveSpan{t: t, start: now, sp: Span{Trace: trace, Name: name, StartNs: now.UnixNano()}}
}

// Shard tags the span with a shard index.
func (a *ActiveSpan) OnShard(shard int) *ActiveSpan {
	if a != nil {
		a.sp.Shard = shard
	}
	return a
}

// Attr attaches a key/value attribute.
func (a *ActiveSpan) Attr(k, v string) *ActiveSpan {
	if a == nil {
		return nil
	}
	if a.sp.Attrs == nil {
		a.sp.Attrs = map[string]string{}
	}
	a.sp.Attrs[k] = v
	return a
}

// AttrInt attaches an integer attribute.
func (a *ActiveSpan) AttrInt(k string, v int64) *ActiveSpan {
	return a.Attr(k, fmt.Sprintf("%d", v))
}

// End completes the span, stamping its duration and error, and records it.
func (a *ActiveSpan) End(err error) {
	if a == nil {
		return
	}
	a.t.mu.Lock()
	now := a.t.now()
	a.t.mu.Unlock()
	a.sp.DurNs = now.Sub(a.start).Nanoseconds()
	if err != nil {
		a.sp.Err = err.Error()
	}
	a.t.Record(a.sp)
}

// CountSpans groups the ring's spans by name (a test helper for the
// no-double-count assertions, and the /statusz trace summary).
func (t *Tracer) CountSpans() map[string]int {
	out := map[string]int{}
	for _, sp := range t.Spans() {
		out[sp.Name]++
	}
	return out
}

// SummarizeSpans renders a sorted name→count table for /statusz.
func (t *Tracer) SummarizeSpans() string {
	counts := t.CountSpans()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-28s %d\n", n, counts[n])
	}
	return b.String()
}

// Plane bundles the registry and tracer that ride together through every
// layer. A nil *Plane (observability off) yields nil components, which are
// themselves no-ops — the whole plane costs a few nil checks when disabled.
type Plane struct {
	Reg *Registry
	Tr  *Tracer
}

// NewPlane returns a plane with a fresh registry and a default-capacity
// tracer.
func NewPlane() *Plane {
	return &Plane{Reg: NewRegistry(), Tr: NewTracer(DefaultRingSpans)}
}

// Registry returns the plane's registry (nil for a nil plane).
func (p *Plane) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.Reg
}

// Tracer returns the plane's tracer (nil for a nil plane).
func (p *Plane) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.Tr
}

// SetClock stubs both components' clocks at once.
func (p *Plane) SetClock(fn func() time.Time) {
	if p == nil {
		return
	}
	p.Reg.SetClock(fn)
	p.Tr.SetClock(fn)
}
