package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerEndpoints(t *testing.T) {
	p := NewPlane()
	RegisterRuntimeMetrics(p.Reg)
	p.Reg.Counter("gavel_rounds_total", "Rounds.").Add(9)
	p.Tr.Record(Span{Trace: RoundTrace(1), Name: "shard.allocate"})

	srv := NewServer(p)
	srv.AddStatus("shards", func() string { return "shard 0: 12 jobs\n" })
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	base := fmt.Sprintf("http://%s", addr)

	metrics := scrape(t, base+"/metrics")
	if !strings.Contains(metrics, "gavel_rounds_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "go_goroutines") {
		t.Fatalf("/metrics missing runtime collectors:\n%s", metrics)
	}

	if got := scrape(t, base+"/healthz"); got != "ok\n" {
		t.Fatalf("/healthz = %q", got)
	}

	statusz := scrape(t, base+"/statusz")
	if !strings.Contains(statusz, "=== shards ===") || !strings.Contains(statusz, "12 jobs") {
		t.Fatalf("/statusz missing section:\n%s", statusz)
	}
	if !strings.Contains(statusz, "shard.allocate") {
		t.Fatalf("/statusz missing trace summary:\n%s", statusz)
	}

	trace := scrape(t, base+"/debug/trace")
	if !strings.Contains(trace, `"name":"shard.allocate"`) {
		t.Fatalf("/debug/trace = %q", trace)
	}

	pprofIdx := scrape(t, base+"/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("/debug/pprof/ = %q", pprofIdx)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Double-close and nil-safety.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSrv *Server
	nilSrv.AddStatus("x", func() string { return "" })
	if _, err := nilSrv.Serve(""); err != nil {
		t.Fatal(err)
	}
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil server should no-op")
	}
}

func TestOptionsFromEnv(t *testing.T) {
	t.Setenv("GAVEL_OBS_LISTEN", "127.0.0.1:0")
	t.Setenv("GAVEL_OBS_TRACE", "")
	t.Setenv("GAVEL_OBS_RING", "128")
	o := OptionsFromEnv()
	if o.Listen != "127.0.0.1:0" || o.RingSpans != 128 || !o.Enabled() {
		t.Fatalf("opts = %+v", o)
	}
	p, srv, f, err := o.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || srv == nil || f != nil {
		t.Fatalf("build: plane=%v srv=%v f=%v", p, srv, f)
	}
	defer srv.Close()
	if !strings.Contains(scrape(t, "http://"+srv.Addr()+"/metrics"), "go_goroutines") {
		t.Fatal("built server should export runtime metrics")
	}

	t.Setenv("GAVEL_OBS_LISTEN", "")
	t.Setenv("GAVEL_OBS_RING", "")
	o = OptionsFromEnv()
	if o.Enabled() || o.RingSpans != DefaultRingSpans {
		t.Fatalf("opts = %+v", o)
	}
	p2, srv2, f2, err := o.Build()
	if err != nil || p2 != nil || srv2 != nil || f2 != nil {
		t.Fatal("disabled options should build nothing")
	}

	dir := t.TempDir()
	t.Setenv("GAVEL_OBS_TRACE", dir+"/trace.jsonl")
	o = OptionsFromEnv()
	p3, srv3, f3, err := o.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == nil || srv3 != nil || f3 == nil {
		t.Fatalf("trace-only build: plane=%v srv=%v f=%v", p3, srv3, f3)
	}
	p3.Tr.Begin(RoundTrace(1), "x").End(nil)
	f3.Close()
}
