// Package stats provides the small statistics helpers the experiment
// harness uses: means, percentiles, and CDF summaries over job metrics.
// (Re-homed from internal/metrics when the obs telemetry plane landed.)
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v (NaN for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy: the smallest element whose cumulative fraction is >= p/100,
// i.e. s[ceil(p*N/100) - 1]. NaN for empty input.
//
// The rank is computed multiply-first (p*N before the /100): the
// division-first form p/100*N puts the rounding error of p/100 in front of
// the multiply, so e.g. p=55 over 20 elements yields 11.000000000000002,
// ceils to 12, and returns the wrong element. With multiply-first, p=50
// over 2 elements is exactly rank 1 → the lower element, consistent with
// the documented rule.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p*float64(len(s))/100)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Median is Percentile(v, 50).
func Median(v []float64) float64 { return Percentile(v, 50) }

// StdDev returns the population standard deviation.
func StdDev(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns up to points evenly spaced samples of the empirical CDF.
func CDF(v []float64, points int) []CDFPoint {
	if len(v) == 0 || points <= 0 {
		return nil
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if points > len(s) {
		points = len(s)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(s) / points
		if idx > len(s) {
			idx = len(s)
		}
		out = append(out, CDFPoint{Value: s[idx-1], Fraction: float64(idx) / float64(len(s))})
	}
	return out
}
