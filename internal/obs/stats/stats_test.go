package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if Percentile(v, 0) != 1 || Percentile(v, 100) != 5 {
		t.Fatal("extremes")
	}
	if Median(v) != 3 {
		t.Fatalf("median = %v", Median(v))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated (sorted copy).
	if v[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

// Nearest-rank edges: p=50 over 2 elements is rank ceil(1.0)=1 → the lower
// element, per the documented rule.
func TestPercentileNearestRankEdges(t *testing.T) {
	if got := Percentile([]float64{10, 20}, 50); got != 10 {
		t.Fatalf("p50 of {10,20} = %v, want 10 (lower element)", got)
	}
	if got := Percentile([]float64{10, 20}, 51); got != 20 {
		t.Fatalf("p51 of {10,20} = %v, want 20", got)
	}
	// p=55 over 20 elements: 55*20/100 = 11 exactly → rank 11 → s[10].
	// The old division-first formula computed ceil(11.000000000000002)=12
	// and returned s[11].
	v := make([]float64, 20)
	for i := range v {
		v[i] = float64(i + 1)
	}
	if got := Percentile(v, 55); got != 11 {
		t.Fatalf("p55 of 1..20 = %v, want 11", got)
	}
	// Same float hazard at p=30, N=10: 0.3*10 = 3.0000000000000004
	// division-first; multiply-first is exactly 3 → s[2].
	v10 := make([]float64, 10)
	for i := range v10 {
		v10[i] = float64(i + 1)
	}
	if got := Percentile(v10, 30); got != 3 {
		t.Fatalf("p30 of 1..10 = %v, want 3", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{2, 2, 2}) != 0 {
		t.Fatal("constant stddev")
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("stddev = %v, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{4, 1, 3, 2}, 4)
	if len(pts) != 4 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[3].Value != 4 || pts[3].Fraction != 1 {
		t.Fatalf("last point %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty CDF")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(v []float64) bool {
		if len(v) == 0 {
			return true
		}
		for _, x := range v {
			if math.IsNaN(x) {
				return true
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := Percentile(v, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(v, p) always equals s[ceil(p*N/100)-1] computed with
// integer arithmetic when p is integral — the float formula must agree with
// the exact rule.
func TestPropertyPercentileExactRank(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) {
				return true
			}
		}
		p := int(pRaw%99) + 1 // 1..99
		got := Percentile(raw, float64(p))
		s := append([]float64(nil), raw...)
		sortFloats(s)
		rank := (p*len(s) + 99) / 100 // ceil with ints
		if rank < 1 {
			rank = 1
		}
		return got == s[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
