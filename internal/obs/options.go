package obs

import (
	"os"
	"strconv"
)

// Options are the observability knobs shared by every daemon. Flags default
// from the environment (OptionsFromEnv), mirroring how lp.Options handles
// the GAVEL_LP_* family:
//
//	GAVEL_OBS_LISTEN  default for -obs-listen (e.g. "127.0.0.1:9090"; empty = off)
//	GAVEL_OBS_TRACE   default for -obs-trace (JSONL span log path; empty = ring only)
//	GAVEL_OBS_RING    trace ring capacity in spans (default 4096)
type Options struct {
	Listen    string
	TracePath string
	RingSpans int
}

// OptionsFromEnv reads the GAVEL_OBS_* environment knobs.
func OptionsFromEnv() Options {
	o := Options{
		Listen:    os.Getenv("GAVEL_OBS_LISTEN"),
		TracePath: os.Getenv("GAVEL_OBS_TRACE"),
		RingSpans: DefaultRingSpans,
	}
	if v := os.Getenv("GAVEL_OBS_RING"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			o.RingSpans = n
		}
	}
	return o
}

// Enabled reports whether any telemetry output is requested.
func (o Options) Enabled() bool { return o.Listen != "" || o.TracePath != "" }

// Build constructs the plane, JSONL sink, and HTTP server the options
// describe. Returns (nil, nil, nil) when disabled. The caller owns closing
// both returned values; the *os.File may be nil when only -obs-listen is
// set.
func (o Options) Build() (*Plane, *Server, *os.File, error) {
	if !o.Enabled() {
		return nil, nil, nil, nil
	}
	p := &Plane{Reg: NewRegistry(), Tr: NewTracer(o.RingSpans)}
	var f *os.File
	if o.TracePath != "" {
		var err error
		f, err = os.OpenFile(o.TracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, err
		}
		p.Tr.SetWriter(f)
	}
	var srv *Server
	if o.Listen != "" {
		srv = NewServer(p)
		if _, err := srv.Serve(o.Listen); err != nil {
			if f != nil {
				f.Close()
			}
			return nil, nil, nil, err
		}
	}
	RegisterRuntimeMetrics(p.Reg)
	return p, srv, f, nil
}
