// Package obs is Gavel's runtime telemetry plane: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms), per-round structured
// tracing (trace.go), and the live introspection HTTP server every daemon
// mounts under -obs-listen (http.go).
//
// Two properties shape the design:
//
//   - Determinism. Instrumentation must never perturb the scheduler's
//     byte-determinism: instruments are lock-free atomics off the hot path,
//     draw nothing from any rand stream, and the clock is injectable
//     (SetClock) so duration observations are reproducible under a stub
//     clock. Snapshots come out in sorted (name, label-values) order, and
//     DumpDeterministic excludes the volatile sampled-at-scrape collectors
//     (runtime.go), so two seeded runs of the same workload produce
//     byte-identical deterministic dumps.
//   - Nil-safety. Every constructor accepts a nil receiver and every
//     instrument method accepts a nil instrument, all no-ops. Call sites
//     instrument unconditionally; a deployment without -obs-listen pays a
//     nil check per event and allocates nothing.
//
// Histogram sums accumulate in fixed-point (nanounits) rather than floating
// point, so concurrent observers produce order-independent — deterministic —
// sums.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the instrument family type.
type Kind uint8

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds instrument families and renders them in Prometheus text
// exposition format. A nil *Registry is valid everywhere: constructors return
// nil instruments whose methods no-op.
type Registry struct {
	mu   sync.Mutex
	now  func() time.Time
	fams map[string]*family
}

// NewRegistry returns an empty registry on the real clock.
func NewRegistry() *Registry {
	return &Registry{now: time.Now, fams: map[string]*family{}}
}

// SetClock replaces the registry's clock (Now/Since). Deterministic tests
// install a stub so duration observations reproduce across runs.
func (r *Registry) SetClock(fn func() time.Time) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.now = fn
	r.mu.Unlock()
}

// Now reads the registry's clock (zero time for a nil registry).
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	r.mu.Lock()
	fn := r.now
	r.mu.Unlock()
	return fn()
}

// Since returns seconds elapsed since t on the registry's clock (0 for a nil
// registry or zero t, so an untimed start never yields a garbage duration).
func (r *Registry) Since(t time.Time) float64 {
	if r == nil || t.IsZero() {
		return 0
	}
	return r.Now().Sub(t).Seconds()
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// family is one named instrument family: a kind, help text, label names, and
// the children keyed by joined label values.
type family struct {
	name     string
	help     string
	kind     Kind
	labels   []string
	buckets  []float64 // histograms only
	volatile bool      // sampled at scrape; excluded from DumpDeterministic

	mu       sync.Mutex
	children map[string]*child
	fn       func() float64 // volatile gauge callback
}

// child is one labeled instrument's state. Counters and histogram fields are
// atomics so concurrent fan-out goroutines never contend on a lock.
type child struct {
	labelVals []string
	count     atomic.Int64  // counter value
	bits      atomic.Uint64 // gauge float64 bits
	hcounts   []atomic.Int64
	hsum      atomic.Int64 // fixed-point: value * 1e9, rounded
	hcount    atomic.Int64
}

// register installs (or re-finds) a family. Re-registration with the same
// shape returns the existing family; a shape mismatch panics — two call sites
// disagreeing about an instrument is a programming error, not a runtime
// condition.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64, volatile bool, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		volatile: volatile,
		children: map[string]*child{},
		fn:       fn,
	}
	r.fams[name] = f
	return f
}

// childKey joins label values unambiguously.
func childKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelVals: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			c.hcounts = make([]atomic.Int64, len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// Counter is a monotonically increasing integer instrument.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int) {
	if c == nil || c.c == nil || n <= 0 {
		return
	}
	c.c.count.Add(int64(n))
}

// Value reads the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil || c.c == nil {
		return 0
	}
	return c.c.count.Load()
}

// Gauge is a settable float instrument.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.c == nil {
		return
	}
	g.c.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	if g == nil || g.c == nil {
		return
	}
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil || g.c == nil {
		return 0
	}
	return math.Float64frombits(g.c.bits.Load())
}

// Histogram is a fixed-bucket distribution instrument. Observations
// accumulate into cumulative bucket counts plus a fixed-point sum, so
// concurrent observers yield order-independent state.
type Histogram struct {
	f *family
	c *child
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.c == nil {
		return
	}
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with upper bound >= v
	h.c.hcounts[i].Add(1)
	h.c.hcount.Add(1)
	h.c.hsum.Add(int64(math.Round(v * 1e9)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil || h.c == nil {
		return 0
	}
	return h.c.hcount.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil || h.c == nil {
		return 0
	}
	return float64(h.c.hsum.Load()) / 1e9
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{c: v.f.child(values)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return &Gauge{c: v.f.child(values)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{f: v.f, c: v.f.child(values)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindCounter, nil, nil, false, nil)
	return &Counter{c: f.child(nil)}
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil, false, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindGauge, nil, nil, false, nil)
	return &Gauge{c: f.child(nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil, false, nil)}
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time. Sampled
// gauges are volatile: they appear in WritePrometheus but not in
// DumpDeterministic, because their values (goroutine counts, heap bytes)
// cannot reproduce across runs. fn must be safe to call from the scrape
// goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, KindGauge, nil, nil, true, fn)
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram.
// Buckets are the cumulative upper bounds, ascending; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindHistogram, nil, buckets, false, nil)
	return &Histogram{f: f, c: f.child(nil)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets, false, nil)}
}

// ExpBuckets returns n exponential bucket bounds starting at start, each
// factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency histogram layout: 10µs to ~2.6min
// in powers of four — wide enough for both a sub-millisecond warm LP solve
// and a multi-second journal fsync stall.
var DurationBuckets = ExpBuckets(1e-5, 4, 12)

// labelEscaper escapes Prometheus label values.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatValue renders a float without exponent noise for integral values.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func labelPairs(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(v))
		b.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family — volatile collectors included — in
// text exposition format, families sorted by name and children by label
// values, so consecutive scrapes of unchanged state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, true)
}

// DumpDeterministic renders the non-volatile families as exposition text.
// Under a stub clock this string is a pure function of the instrumented
// events, so two seeded runs of the same workload produce equal dumps — the
// reproducibility contract the chaos tests assert.
func (r *Registry) DumpDeterministic() string {
	var b strings.Builder
	r.write(&b, false)
	return b.String()
}

func (r *Registry) write(w io.Writer, volatile bool) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.volatile && !volatile {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn())); err != nil {
				return err
			}
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]*child, 0, len(keys))
		for _, k := range keys {
			kids = append(kids, f.children[k])
		}
		f.mu.Unlock()
		for _, c := range kids {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelPairs(f.labels, c.labelVals), c.count.Load())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, c.labelVals), formatValue(math.Float64frombits(c.bits.Load())))
		return err
	case KindHistogram:
		cum := int64(0)
		for i, ub := range f.buckets {
			cum += c.hcounts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, c.labelVals, "le", fmt.Sprintf("%g", ub)), cum); err != nil {
				return err
			}
		}
		cum += c.hcounts[len(f.buckets)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, c.labelVals, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPairs(f.labels, c.labelVals), formatValue(float64(c.hsum.Load())/1e9)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, c.labelVals), c.hcount.Load())
		return err
	}
	return nil
}
