package scheduler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/core"
)

func singleAlloc(X [][]float64, tputs [][]float64) *core.Allocation {
	units := make([]core.Unit, len(X))
	for m := range X {
		units[m] = core.Single(m, tputs[m])
	}
	return &core.Allocation{Units: units, X: X}
}

func ids(alloc *core.Allocation) func(u int) []int {
	return func(u int) []int { return alloc.Units[u].Jobs }
}

func sfOne(u int) int { return 1 }

func TestKeyForCanonical(t *testing.T) {
	if KeyFor([]int{3, 1}) != KeyFor([]int{1, 3}) {
		t.Fatal("key not order-independent")
	}
	if KeyFor([]int{1}) == KeyFor([]int{1, 3}) {
		t.Fatal("distinct units collide")
	}
}

func TestAssignRespectsCapacity(t *testing.T) {
	alloc := singleAlloc(
		[][]float64{{1, 0}, {1, 0}, {1, 0}},
		[][]float64{{1, 1}, {1, 1}, {1, 1}},
	)
	m := New(2, []int{2, 2})
	got, err := m.Assign(alloc, Workers{Free: []int{2, 1}}, sfOne, ids(alloc))
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	count := map[int]int{}
	for _, a := range got {
		count[a.Type]++
	}
	if count[0] > 2 || count[1] > 1 {
		t.Fatalf("capacity violated: %v", got)
	}
}

func TestAssignNoJobTwicePerRound(t *testing.T) {
	// Job 0 appears as a single and in a pair; only one may run.
	units := []core.Unit{
		core.Single(0, []float64{1}),
		core.Single(1, []float64{1}),
		core.Pair(0, 1, []float64{0.8}, []float64{0.8}),
	}
	alloc := &core.Allocation{Units: units, X: [][]float64{{0.5}, {0.5}, {0.5}}}
	m := New(1, []int{4})
	got, err := m.Assign(alloc, Workers{Free: []int{4}}, sfOne, ids(alloc))
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	seen := map[int]bool{}
	for _, a := range got {
		for _, j := range units[a.UnitIdx].Jobs {
			if seen[j] {
				t.Fatalf("job %d scheduled twice: %v", j, got)
			}
			seen[j] = true
		}
	}
}

func TestAssignSkipsTooLargeJobs(t *testing.T) {
	// Algorithm 1: a 4-worker job that does not fit is skipped, and a
	// smaller job runs instead — no starvation of the whole round.
	alloc := singleAlloc(
		[][]float64{{1}, {1}},
		[][]float64{{1}, {1}},
	)
	m := New(1, []int{8})
	sf := func(u int) int {
		if u == 0 {
			return 4
		}
		return 1
	}
	got, err := m.Assign(alloc, Workers{Free: []int{2}}, sf, ids(alloc))
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if len(got) != 1 || got[0].UnitIdx != 1 {
		t.Fatalf("want only the 1-worker job scheduled, got %v", got)
	}
}

// TestFractionsTrackAllocation is the mechanism's core contract (§5): over
// many rounds the realized time fractions approach the target allocation.
func TestFractionsTrackAllocation(t *testing.T) {
	// Paper's Xexample (Figure 3): 3 jobs, 3 types, one device each.
	X := [][]float64{
		{0.6, 0.4, 0.0},
		{0.2, 0.6, 0.2},
		{0.2, 0.0, 0.8},
	}
	tput := [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	alloc := singleAlloc(X, tput)
	m := New(3, []int{1, 1, 1})
	const rounds = 400
	recv := make([][]float64, 3)
	for i := range recv {
		recv[i] = make([]float64, 3)
	}
	for r := 0; r < rounds; r++ {
		got, err := m.Assign(alloc, Workers{Free: []int{1, 1, 1}}, sfOne, ids(alloc))
		if err != nil {
			t.Fatalf("Assign: %v", err)
		}
		m.RecordRound(alloc, got, 1, ids(alloc))
		for _, a := range got {
			recv[a.UnitIdx][a.Type]++
		}
	}
	for u := 0; u < 3; u++ {
		for j := 0; j < 3; j++ {
			frac := recv[u][j] / rounds
			if math.Abs(frac-X[u][j]) > 0.05 {
				t.Errorf("job %d type %d: received %.3f, target %.3f", u, j, frac, X[u][j])
			}
		}
	}
}

func TestPlacementConsolidatesWhenPossible(t *testing.T) {
	alloc := singleAlloc([][]float64{{1}}, [][]float64{{1}})
	m := New(1, []int{8})
	sf := func(u int) int { return 8 }
	got, err := m.Assign(alloc, Workers{Free: []int{16}}, sf, ids(alloc))
	if err != nil || len(got) != 1 {
		t.Fatalf("Assign: %v %v", got, err)
	}
	if !got[0].Consolidated {
		t.Fatal("8-worker job on 8-GPU servers should be consolidated")
	}
}

func TestPlacementSpreadsWhenFragmented(t *testing.T) {
	// 4-GPU servers cannot consolidate an 8-worker job.
	alloc := singleAlloc([][]float64{{1}}, [][]float64{{1}})
	m := New(1, []int{4})
	sf := func(u int) int { return 8 }
	got, err := m.Assign(alloc, Workers{Free: []int{16}}, sf, ids(alloc))
	if err != nil || len(got) != 1 {
		t.Fatalf("Assign: %v %v", got, err)
	}
	if got[0].Consolidated {
		t.Fatal("8-worker job on 4-GPU servers cannot be consolidated")
	}
}

func TestResetReceivedClearsState(t *testing.T) {
	alloc := singleAlloc([][]float64{{1}}, [][]float64{{1}})
	m := New(1, []int{1})
	got, _ := m.Assign(alloc, Workers{Free: []int{1}}, sfOne, ids(alloc))
	m.RecordRound(alloc, got, 60, ids(alloc))
	if m.ReceivedSeconds(KeyFor([]int{0}))[0] != 60 {
		t.Fatal("time not recorded")
	}
	m.ResetReceived()
	if m.ReceivedSeconds(KeyFor([]int{0}))[0] != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: Assign never schedules a job twice, never exceeds capacity, and
// never schedules a zero-allocation unit.
func TestPropertyAssignInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 1 + rng.Intn(8)
		nTypes := 1 + rng.Intn(3)
		X := make([][]float64, nJobs)
		tp := make([][]float64, nJobs)
		sfv := make([]int, nJobs)
		for m := 0; m < nJobs; m++ {
			X[m] = make([]float64, nTypes)
			tp[m] = make([]float64, nTypes)
			for j := range X[m] {
				if rng.Float64() < 0.6 {
					X[m][j] = rng.Float64()
				}
				tp[m][j] = 1
			}
			sfv[m] = 1
			if rng.Float64() < 0.3 {
				sfv[m] = 1 << rng.Intn(3)
			}
		}
		alloc := singleAlloc(X, tp)
		free := make([]int, nTypes)
		for j := range free {
			free[j] = 1 + rng.Intn(8)
		}
		m := New(nTypes, nil)
		for r := 0; r < 5; r++ {
			got, err := m.Assign(alloc, Workers{Free: free}, func(u int) int { return sfv[u] }, ids(alloc))
			if err != nil {
				return false
			}
			used := make([]int, nTypes)
			seen := map[int]bool{}
			for _, a := range got {
				if X[a.UnitIdx][a.Type] <= 0 {
					return false
				}
				if seen[a.UnitIdx] {
					return false
				}
				seen[a.UnitIdx] = true
				used[a.Type] += sfv[a.UnitIdx]
			}
			for j := range used {
				if used[j] > free[j] {
					return false
				}
			}
			m.RecordRound(alloc, got, 1, ids(alloc))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
