package scheduler

import "fmt"

// UsedWorkers tallies the per-type device demand of one round's assignments:
// each assignment consumes its unit's scale factor on its type. The sharded
// coordinator uses it to verify that the union of per-shard rounds respects
// the global per-type worker budget.
func UsedWorkers(assigns []Assignment, scaleFactor func(u int) int, numTypes int) []int {
	used := make([]int, numTypes)
	for _, a := range assigns {
		sf := scaleFactor(a.UnitIdx)
		if sf <= 0 {
			sf = 1
		}
		if a.Type >= 0 && a.Type < numTypes {
			used[a.Type] += sf
		}
	}
	return used
}

// WithinBudget verifies used <= budget per type. The shards' worker slices
// partition the cluster, so a violation after a merge means a shard
// overscheduled its own slice — an invariant breach, not a recoverable
// condition, which is why this reports an error instead of clamping.
func WithinBudget(used, budget []int) error {
	if len(used) != len(budget) {
		return fmt.Errorf("scheduler: %d used-worker types for %d budget types", len(used), len(budget))
	}
	for j := range used {
		if used[j] > budget[j] {
			return fmt.Errorf("scheduler: type %d oversubscribed in merged round: %d > %d", j, used[j], budget[j])
		}
	}
	return nil
}
