// Package scheduler implements Gavel's preemptive round-based scheduling
// mechanism (§5): given a target allocation X computed by a policy, it
// selects the scheduling units (jobs or space-sharing pairs) to run in each
// fixed-length round so the realized time fractions track X. Units are
// picked greedily in decreasing priority order, where
//
//	priority[u][j] = X[u][j] / f[u][j]
//
// and f[u][j] is the fraction of type-j time unit u has actually received
// since the allocation was computed (Figure 4, Algorithm 1). A unit that
// has not run yet but has positive X has infinite priority; scheduling a
// unit removes every conflicting unit (any unit sharing one of its jobs)
// from the round, and units whose scale factor exceeds the remaining
// workers of a type are skipped rather than starving the round.
package scheduler

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gavel/internal/core"
)

// UnitKey canonically identifies a scheduling unit by its member job IDs,
// so received-time accounting survives allocation recomputations that
// reorder units.
type UnitKey string

// KeyFor builds the canonical key from member job IDs. The input slice is
// never mutated (the sort runs on a copy).
func KeyFor(jobIDs []int) UnitKey {
	ids := append([]int(nil), jobIDs...)
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return UnitKey(b.String())
}

// unitKey returns the received-time accounting key for unit u of alloc: the
// unit's memoized stable identity when present (units assembled by
// core.ThroughputCache.Units carry JobKey/PairKey, already derived from
// external job IDs), falling back to building one from the member job IDs.
// The memoized path is what keeps sharded rounds from rebuilding O(units)
// strings per shard per round; the two key namespaces never mix within one
// mechanism because a unit's identity either is or is not keyed for the
// whole run.
func unitKey(alloc *core.Allocation, u int, jobIDs func(u int) []int) UnitKey {
	if k := alloc.Units[u].Key; k != "" {
		return UnitKey(k)
	}
	return KeyFor(jobIDs(u))
}

// Assignment is one scheduled unit for the upcoming round.
type Assignment struct {
	UnitIdx int // index into the allocation's units
	Type    int // accelerator type
	// Consolidated reports whether a multi-worker job fit on one server.
	Consolidated bool
	// Server is the server index chosen within the type (informational).
	Server int
}

// Mechanism carries received-time state across rounds.
type Mechanism struct {
	numTypes  int
	perServer []int // devices per server, per type

	timeOn    map[UnitKey][]float64 // seconds received per type
	totalTime []float64             // total seconds handed out per type
}

// New constructs a mechanism for a cluster with the given per-type device
// counts per server (used for consolidation decisions).
func New(numTypes int, perServer []int) *Mechanism {
	ps := append([]int(nil), perServer...)
	for len(ps) < numTypes {
		ps = append(ps, 8)
	}
	return &Mechanism{
		numTypes:  numTypes,
		perServer: ps,
		timeOn:    map[UnitKey][]float64{},
		totalTime: make([]float64, numTypes),
	}
}

// ResetReceived clears received-time accounting; call when a new allocation
// is computed (the mechanism tracks fractions between recomputations,
// Figure 3).
func (m *Mechanism) ResetReceived() {
	m.timeOn = map[UnitKey][]float64{}
	m.totalTime = make([]float64, m.numTypes)
}

// Priorities returns the priority matrix for the given allocation:
// X[u][j] / f[u][j], with +Inf where the unit has received nothing and
// X > 0, and 0 where X == 0.
func (m *Mechanism) Priorities(alloc *core.Allocation, jobIDs func(u int) []int) [][]float64 {
	pri := make([][]float64, len(alloc.Units))
	for ui := range alloc.Units {
		pri[ui] = make([]float64, m.numTypes)
		key := unitKey(alloc, ui, jobIDs)
		recv := m.timeOn[key]
		for j := 0; j < m.numTypes; j++ {
			x := alloc.X[ui][j]
			if x <= 0 {
				continue
			}
			var f float64
			if recv != nil && m.totalTime[j] > 0 {
				f = recv[j] / m.totalTime[j]
			}
			if f <= 0 {
				pri[ui][j] = math.Inf(1)
			} else {
				pri[ui][j] = x / f
			}
		}
	}
	return pri
}

// Workers describes per-type free device counts for a round.
type Workers struct {
	Free []int
}

// Assign implements Algorithm 1: greedily schedule the highest-priority
// (unit, type) pairs, skipping units that no longer fit, until no workers
// remain or no schedulable unit has positive priority. scaleFactor gives
// each unit's device demand; jobIDs its member job IDs.
func (m *Mechanism) Assign(alloc *core.Allocation, workers Workers, scaleFactor func(u int) int, jobIDs func(u int) []int) ([]Assignment, error) {
	if len(workers.Free) != m.numTypes {
		return nil, fmt.Errorf("scheduler: %d worker counts for %d types", len(workers.Free), m.numTypes)
	}
	pri := m.Priorities(alloc, jobIDs)

	type cand struct {
		u, j int
		p    float64
		x    float64
	}
	var cands []cand
	for u := range pri {
		for j := 0; j < m.numTypes; j++ {
			if pri[u][j] > 0 {
				cands = append(cands, cand{u: u, j: j, p: pri[u][j], x: alloc.X[u][j]})
			}
		}
	}
	// Highest priority first; among infinite priorities prefer larger
	// target allocation; final tie-break on unit index for determinism.
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.p != cb.p {
			return ca.p > cb.p
		}
		if ca.x != cb.x {
			return ca.x > cb.x
		}
		if ca.u != cb.u {
			return ca.u < cb.u
		}
		return ca.j < cb.j
	})

	free := append([]int(nil), workers.Free...)
	jobBusy := map[int]bool{}
	var out []Assignment
	for _, c := range cands {
		sf := scaleFactor(c.u)
		if sf <= 0 {
			sf = 1
		}
		if free[c.j] < sf {
			continue // cannot fit this round; keeps high priority for later
		}
		conflict := false
		for _, id := range jobIDs(c.u) {
			if jobBusy[id] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, id := range jobIDs(c.u) {
			jobBusy[id] = true
		}
		free[c.j] -= sf
		out = append(out, Assignment{UnitIdx: c.u, Type: c.j})
	}

	m.placeOnServers(out, workers, scaleFactor)
	return out, nil
}

// placeOnServers assigns each scheduled unit to servers within its type,
// preferring to consolidate multi-worker jobs onto a single server
// (placement sensitivity, §3.1/§5: jobs are placed in decreasing order of
// requested workers to minimize fragmentation).
func (m *Mechanism) placeOnServers(out []Assignment, workers Workers, scaleFactor func(u int) int) {
	// Free slots per server, per type, reconstructed fresh each round.
	serverFree := make([][]int, m.numTypes)
	for j := 0; j < m.numTypes; j++ {
		per := m.perServer[j]
		nServers := (workers.Free[j] + per - 1) / per
		serverFree[j] = make([]int, nServers)
		remaining := workers.Free[j]
		for s := range serverFree[j] {
			if remaining >= per {
				serverFree[j][s] = per
				remaining -= per
			} else {
				serverFree[j][s] = remaining
				remaining = 0
			}
		}
	}
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return scaleFactor(out[order[a]].UnitIdx) > scaleFactor(out[order[b]].UnitIdx)
	})
	for _, i := range order {
		a := &out[i]
		sf := scaleFactor(a.UnitIdx)
		if sf <= 0 {
			sf = 1
		}
		// Best fit: smallest server slot that holds the whole job.
		best, bestFree := -1, math.MaxInt
		for s, f := range serverFree[a.Type] {
			if f >= sf && f < bestFree {
				best, bestFree = s, f
			}
		}
		if best >= 0 {
			serverFree[a.Type][best] -= sf
			a.Server = best
			a.Consolidated = true
			continue
		}
		// Spread across servers: unconsolidated placement.
		a.Consolidated = sf == 1
		need := sf
		for s := range serverFree[a.Type] {
			if need == 0 {
				break
			}
			take := serverFree[a.Type][s]
			if take > need {
				take = need
			}
			serverFree[a.Type][s] -= take
			need -= take
			a.Server = s
		}
	}
}

// RecordRound accumulates received time for the units of alloc that ran.
func (m *Mechanism) RecordRound(alloc *core.Allocation, ran []Assignment, roundSeconds float64, jobIDs func(u int) []int) {
	for _, a := range ran {
		key := unitKey(alloc, a.UnitIdx, jobIDs)
		recv := m.timeOn[key]
		if recv == nil {
			recv = make([]float64, m.numTypes)
			m.timeOn[key] = recv
		}
		recv[a.Type] += roundSeconds
		m.totalTime[a.Type] += roundSeconds
	}
}

// ReceivedSeconds returns the time unit key has received per type since the
// last reset (for tests and introspection).
func (m *Mechanism) ReceivedSeconds(key UnitKey) []float64 {
	recv := m.timeOn[key]
	if recv == nil {
		return make([]float64, m.numTypes)
	}
	return append([]float64(nil), recv...)
}
