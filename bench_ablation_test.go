package gavel

import (
	"testing"

	"gavel/internal/experiments"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// max-min refinement pass and the space-sharing candidate cap.

func BenchmarkAblationRefinementPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.AblationRefinementPass(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: refinement pass", out.Report)
	}
}

func BenchmarkAblationPairCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.AblationPairCap(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: SS pair cap", out.Report)
	}
}
